//! The query hot-path benchmark behind `BENCH_PR10.json`: per-engine build
//! time, p50/p99 query latency, throughput and settled counts on ER / BA /
//! grid graphs — the IS-LABEL engine measured once per supported kernel
//! tier — plus four before/after comparisons: the dispatched SIMD
//! intersection vs the scalar adaptive kernel, interleaved vs split
//! `DenseCsr` adjacency layout, the dense compact-id kernel vs the hashmap
//! kernel (PR 4), and parallel vs single-thread `LabelSet::build` (PR 4).
//! PR 10 adds the `obs_overhead` section: the documented overhead budget
//! for query-phase tracing plus registry re-emission (metrics-on, the
//! serving default) vs a trace-disabled session (metrics-off).
//!
//! ```text
//! query_hotpath [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks every graph to a few hundred vertices and
//! cross-checks **every** answer of **every** engine against reference
//! Dijkstra (the CI gate); the same JSON schema is emitted either way.
//! Env knobs: `ISLABEL_HOTPATH_N` (default 50 000 vertices per graph),
//! `ISLABEL_HOTPATH_QUERIES` (default 10 000 for the label engines; search
//! baselines run a capped slice), and `ISLABEL_HOTPATH_PLL_MAX_N` (default
//! 20 000): PLL's 2-hop construction is superlinear on weighted ER/grid
//! topologies (≈ 90 s and 200 MB of labels already at n = 20 000), so
//! graphs above the cap report the other four engines and skip PLL.
//!
//! Schema (`islabel-bench-pr10/v1`) — see README § Performance:
//! `graphs[].engines[]` carries `build_ms`, `queries`, `p50_us`, `p99_us`,
//! `qps`, `settled_total` (null for engines without a settle counter);
//! IS-LABEL appears once auto-dispatched (`islabel`) and once per
//! supported tier (`islabel:scalar`, `islabel:sse2`, ...). The
//! `intersect` section carries per-tier label-intersection throughput and
//! the SIMD-vs-scalar speedup claim; `layout` the interleaved-vs-split
//! adjacency claim; `kernel_comparison` and `label_build` the PR-4
//! claims; `obs_overhead` the PR-10 claim (metrics-on p50 within a few
//! percent of metrics-off). Every comparison interleaves its contestants
//! over three rounds and keeps each one's best run.

use islabel_baselines::{BiDijkstra, PllIndex, VcConfig, VcIndex};
use islabel_core::dense::{dense_bi_dijkstra, DenseGk, DenseScratch, DenseView};
use islabel_core::kernel::{self, KernelTier};
use islabel_core::label::LabelSet;
use islabel_core::oracle::DistanceOracle;
use islabel_core::query::{intersect_min, label_bi_dijkstra_in, SearchParams, SearchScratch};
use islabel_core::reference::dijkstra_p2p;
use islabel_core::{BuildConfig, DiIsLabelIndex, IsLabelIndex};
use islabel_graph::generators::{barabasi_albert, erdos_renyi_gnm, grid2d, WeightModel};
use islabel_graph::{CsrGraph, DigraphBuilder, Dist, VertexId, Weight, INF};
use std::time::Instant;

/// Engine label for a forced-tier IS-LABEL run (`EngineReport.engine` is
/// `&'static str`, so the names are spelled out).
fn tier_engine_name(tier: KernelTier) -> &'static str {
    match tier {
        KernelTier::Scalar => "islabel:scalar",
        KernelTier::Sse2 => "islabel:sse2",
        KernelTier::Avx2 => "islabel:avx2",
        KernelTier::Neon => "islabel:neon",
    }
}

/// Per-query latencies in nanoseconds, plus whatever the engine settled.
struct RunStats {
    latencies_ns: Vec<u64>,
    total_ns: u64,
    settled: Option<u64>,
}

struct EngineReport {
    engine: &'static str,
    build_ms: f64,
    queries: usize,
    p50_us: f64,
    p99_us: f64,
    qps: f64,
    settled: Option<u64>,
}

struct GraphReport {
    name: &'static str,
    n: usize,
    m: usize,
    engines: Vec<EngineReport>,
}

use islabel_bench::timing::percentile_us;

fn finish(engine: &'static str, build_ms: f64, mut stats: RunStats) -> EngineReport {
    let queries = stats.latencies_ns.len();
    stats.latencies_ns.sort_unstable();
    EngineReport {
        engine,
        build_ms,
        queries,
        p50_us: percentile_us(&stats.latencies_ns, 0.50),
        p99_us: percentile_us(&stats.latencies_ns, 0.99),
        qps: if stats.total_ns == 0 {
            0.0
        } else {
            queries as f64 / (stats.total_ns as f64 / 1e9)
        },
        settled: stats.settled,
    }
}

/// Times `answer` over `pairs`, cross-checking against `truth` when given.
fn run_workload(
    pairs: &[(VertexId, VertexId)],
    truth: Option<&[Option<Dist>]>,
    engine: &str,
    mut answer: impl FnMut(VertexId, VertexId) -> (Option<Dist>, Option<u64>),
) -> RunStats {
    let mut latencies = Vec::with_capacity(pairs.len());
    let mut settled_total: Option<u64> = None;
    let mut total_ns = 0u64;
    for (i, &(s, t)) in pairs.iter().enumerate() {
        let t0 = Instant::now();
        let (d, settled) = answer(s, t);
        let ns = t0.elapsed().as_nanos() as u64;
        latencies.push(ns);
        total_ns += ns;
        if let Some(settle) = settled {
            *settled_total.get_or_insert(0) += settle;
        }
        if let Some(expect) = truth {
            assert_eq!(
                d, expect[i],
                "{engine}: answer mismatch on query {i} ({s}, {t})"
            );
        }
    }
    RunStats {
        latencies_ns: latencies,
        total_ns,
        settled: settled_total,
    }
}

fn query_pairs(n: usize, count: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..count)
        .map(|_| {
            let s = (next() % n as u64) as VertexId;
            let mut t = (next() % n as u64) as VertexId;
            if t == s {
                t = (t + 1) % n as VertexId;
            }
            (s, t)
        })
        .collect()
}

fn bench_graph(
    name: &'static str,
    g: &CsrGraph,
    label_queries: usize,
    search_queries: usize,
    smoke: bool,
) -> GraphReport {
    let n = g.num_vertices();
    let pairs = query_pairs(n, label_queries, 0xB0A7 + n as u64);
    let search_pairs = &pairs[..search_queries.min(pairs.len())];
    let truth_buf: Option<Vec<Option<Dist>>> =
        smoke.then(|| pairs.iter().map(|&(s, t)| dijkstra_p2p(g, s, t)).collect());
    let truth = truth_buf.as_deref();
    let truth_search = truth.map(|t| &t[..search_pairs.len()]);
    let mut engines = Vec::new();

    // islabel — dense-kernel session, with settled counts.
    eprintln!("[query_hotpath]   islabel ...");
    let t0 = Instant::now();
    let index = IsLabelIndex::build(g, BuildConfig::default());
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut session = index.session();
    let stats = run_workload(&pairs, truth, "islabel", |s, t| {
        let out = session.search_outcome(s, t).expect("in range");
        (
            (out.dist < INF).then_some(out.dist),
            Some(out.settled as u64),
        )
    });
    drop(session);
    engines.push(finish("islabel", build_ms, stats));

    // islabel per kernel tier — same index, dispatch forced, so the p50 /
    // p99 / qps deltas between rows isolate the intersection kernel and
    // nothing else. The auto-dispatched row above should match the
    // highest supported tier's row to within noise.
    for tier in KernelTier::ALL {
        if !tier.is_supported() {
            continue;
        }
        let name = tier_engine_name(tier);
        eprintln!("[query_hotpath]   {name} ...");
        kernel::force_tier(Some(tier));
        let mut session = index.session();
        let stats = run_workload(&pairs, truth, name, |s, t| {
            let out = session.search_outcome(s, t).expect("in range");
            (
                (out.dist < INF).then_some(out.dist),
                Some(out.settled as u64),
            )
        });
        drop(session);
        engines.push(finish(name, build_ms, stats));
    }
    kernel::force_tier(None);

    // di-islabel over the symmetrized digraph.
    eprintln!("[query_hotpath]   di-islabel ...");
    let t0 = Instant::now();
    let mut b = DigraphBuilder::new(n);
    for (u, v, w) in g.edge_list() {
        b.add_arc(u, v, w);
        b.add_arc(v, u, w);
    }
    let di = DiIsLabelIndex::build(&b.build(), BuildConfig::default());
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut di_session = di.session();
    let stats = run_workload(&pairs, truth, "di-islabel", |s, t| {
        (di_session.distance(s, t).expect("in range"), None)
    });
    drop(di_session);
    engines.push(finish("di-islabel", build_ms, stats));

    // pll — 2-hop comparator, label-only queries. Skipped above the size
    // cap (see module docs): its construction is superlinear on these
    // topologies and would dwarf every other engine's build.
    let pll_max_n: usize = std::env::var("ISLABEL_HOTPATH_PLL_MAX_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    if n <= pll_max_n {
        eprintln!("[query_hotpath]   pll ...");
        let t0 = Instant::now();
        let pll = PllIndex::build(g);
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mut pll_session = DistanceOracle::session(&pll);
        let stats = run_workload(&pairs, truth, "pll", |s, t| {
            (pll_session.distance(s, t).expect("in range"), None)
        });
        drop(pll_session);
        engines.push(finish("pll", build_ms, stats));
    } else {
        eprintln!("[query_hotpath]   pll skipped on {name}: n = {n} > ISLABEL_HOTPATH_PLL_MAX_N = {pll_max_n}");
    }

    // vc — search engine; capped workload, settled counts.
    eprintln!("[query_hotpath]   vc ...");
    let t0 = Instant::now();
    let vc = VcIndex::build(g, VcConfig::default());
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut vc_session = vc.session();
    let stats = run_workload(search_pairs, truth_search, "vc", |s, t| {
        let (d, cost) = vc_session.distance_with_cost(s, t).expect("in range");
        (d, Some(cost.settled as u64))
    });
    drop(vc_session);
    engines.push(finish("vc", build_ms, stats));

    // bidij — no index to build; capped workload, settled counts.
    eprintln!("[query_hotpath]   bidij ...");
    let mut searcher = BiDijkstra::new(n);
    let stats = run_workload(search_pairs, truth_search, "bidij", |s, t| {
        let (d, settled) = searcher.distance_with_cost(g, s, t);
        (d, Some(settled as u64))
    });
    engines.push(finish("bidij", 0.0, stats));

    GraphReport {
        name,
        n,
        m: g.num_edges(),
        engines,
    }
}

struct IntersectBench {
    graph: &'static str,
    n: usize,
    queries: usize,
    /// `(tier name, intersections per second)`, scalar first.
    tiers: Vec<(&'static str, f64)>,
    /// Best SIMD tier vs the scalar adaptive kernel (1.0 when the host
    /// supports no SIMD tier).
    simd_speedup: f64,
}

/// Raw Equation-1 throughput per kernel tier: the same label pairs pushed
/// through `intersect_min_at` at every supported tier, interleaved over
/// three rounds (best run each). Each tier's `(Σ dist, Σ witness)`
/// checksum must agree with the scalar tier's — a wrong-but-fast kernel
/// fails here before it can win anything.
///
/// The index is built over a **deep** fixed-k hierarchy, like
/// [`label_build_comparison`] and for the same reason: the σ rule stops
/// ER-like graphs at k = 2, where labels are a handful of entries and
/// Equation 1 is a few dozen nanoseconds of mostly call overhead. Deep
/// hierarchies are where labels grow to hundreds of entries and the
/// intersection becomes the query bottleneck — the regime the SIMD
/// tiers exist for (short skewed pairs delegate to the scalar gallop at
/// every tier regardless; see `kernel::intersect_min_at`).
fn intersect_bench(name: &'static str, g: &CsrGraph, queries: usize) -> IntersectBench {
    let index = IsLabelIndex::build(g, BuildConfig::fixed_k(10));
    let pairs = query_pairs(g.num_vertices(), queries, 0x51D3);
    let supported: Vec<KernelTier> = KernelTier::ALL
        .into_iter()
        .filter(|t| t.is_supported())
        .collect();

    let pass = |tier: KernelTier| -> (std::time::Duration, u64) {
        let mut sum = 0u64;
        let t0 = Instant::now();
        for &(s, t) in &pairs {
            let (d, w) =
                kernel::intersect_min_at(tier, index.labels().label(s), index.labels().label(t));
            sum = sum.wrapping_add(d).wrapping_add(w.unwrap_or(0) as u64);
        }
        (t0.elapsed(), sum)
    };

    let mut best: Vec<std::time::Duration> = vec![std::time::Duration::MAX; supported.len()];
    let mut checksums: Vec<u64> = vec![0; supported.len()];
    for _ in 0..3 {
        for (i, &tier) in supported.iter().enumerate() {
            let (dt, sum) = pass(tier);
            best[i] = best[i].min(dt);
            checksums[i] = sum;
        }
    }
    for (i, &tier) in supported.iter().enumerate() {
        assert_eq!(
            checksums[i],
            checksums[0],
            "{} tier disagrees with scalar on {name}",
            tier.name()
        );
    }

    let qps: Vec<(&'static str, f64)> = supported
        .iter()
        .zip(&best)
        .map(|(t, dt)| (t.name(), pairs.len() as f64 / dt.as_secs_f64()))
        .collect();
    let scalar_qps = qps[0].1;
    let best_simd = qps[1..].iter().map(|&(_, q)| q).fold(f64::NAN, f64::max);
    IntersectBench {
        graph: name,
        n: g.num_vertices(),
        queries: pairs.len(),
        simd_speedup: if best_simd.is_nan() {
            1.0
        } else {
            best_simd / scalar_qps
        },
        tiers: qps,
    }
}

struct LayoutComparison {
    graph: &'static str,
    n: usize,
    m: usize,
    queries: usize,
    split_qps: f64,
    interleaved_qps: f64,
}

/// The split CSR layout `DenseCsr` used before this pass: one `u32`
/// stream of targets, a parallel one of weights. Kept here as the
/// measured-against baseline for [`layout_comparison`]; prefetch hints
/// mirror the interleaved layout's so the rows differ only in layout.
struct SplitCsr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<Weight>,
}

impl DenseView for SplitCsr {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    #[inline]
    fn edges_of(&self, d: u32) -> impl Iterator<Item = (u32, Weight)> + '_ {
        let lo = self.offsets[d as usize] as usize;
        let hi = self.offsets[d as usize + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .zip(&self.weights[lo..hi])
            .map(|(&t, &w)| (t, w))
    }

    #[inline]
    fn prefetch_row(&self, d: u32) {
        if let Some(&lo) = self.offsets.get(d as usize) {
            kernel::prefetch_index(&self.targets, lo as usize);
            kernel::prefetch_index(&self.weights, lo as usize);
        }
    }
}

/// Interleaved vs split adjacency on point-to-point dense searches over
/// the whole grid graph as `G_k` — the measurement that keeps the
/// interleaved `DenseCsr` honest: single-seed searches walk long
/// adjacency runs, the workload where layout matters most.
fn layout_comparison(name: &'static str, g: &CsrGraph, queries: usize) -> LayoutComparison {
    let n = g.num_vertices();
    let members: Vec<VertexId> = (0..n as VertexId).collect();
    let dg = DenseGk::undirected(n, &members, g);
    let interleaved = dg.fwd();
    let mut split = SplitCsr {
        offsets: vec![0],
        targets: Vec::with_capacity(interleaved.num_entries()),
        weights: Vec::with_capacity(interleaved.num_entries()),
    };
    for d in 0..n as u32 {
        for (t, w) in interleaved.edges_of(d) {
            split.targets.push(t);
            split.weights.push(w);
        }
        split.offsets.push(split.targets.len() as u32);
    }

    let pairs = query_pairs(n, queries, 0x1A70);
    let mut scratch = DenseScratch::new(n);
    let to_dense = |v: VertexId| dg.ids().dense(v).expect("full membership");
    let mut pass =
        |view: &dyn Fn(&mut DenseScratch, u32, u32) -> Dist| -> (std::time::Duration, u64) {
            let mut sum = 0u64;
            let t0 = Instant::now();
            for &(s, t) in &pairs {
                sum = sum.wrapping_add(view(&mut scratch, to_dense(s), to_dense(t)));
            }
            (t0.elapsed(), sum)
        };

    let run_interleaved = |scratch: &mut DenseScratch, s: u32, t: u32| -> Dist {
        dense_bi_dijkstra(
            interleaved,
            interleaved,
            &[(s, 0)],
            &[(t, 0)],
            INF,
            None,
            scratch,
        )
        .dist
    };
    let split_ref = &split;
    let run_split = |scratch: &mut DenseScratch, s: u32, t: u32| -> Dist {
        dense_bi_dijkstra(
            split_ref,
            split_ref,
            &[(s, 0)],
            &[(t, 0)],
            INF,
            None,
            scratch,
        )
        .dist
    };

    let mut best_inter = std::time::Duration::MAX;
    let mut best_split = std::time::Duration::MAX;
    let (mut sum_inter, mut sum_split) = (0u64, 0u64);
    for _ in 0..3 {
        let (dt, sum) = pass(&run_interleaved);
        best_inter = best_inter.min(dt);
        sum_inter = sum;
        let (dt, sum) = pass(&run_split);
        best_split = best_split.min(dt);
        sum_split = sum;
    }
    assert_eq!(sum_inter, sum_split, "layouts disagree on {name}");

    LayoutComparison {
        graph: name,
        n,
        m: g.num_edges(),
        queries: pairs.len(),
        split_qps: pairs.len() as f64 / best_split.as_secs_f64(),
        interleaved_qps: pairs.len() as f64 / best_inter.as_secs_f64(),
    }
}

struct KernelComparison {
    graph: &'static str,
    n: usize,
    queries: usize,
    hashmap_qps: f64,
    dense_qps: f64,
}

/// Single-thread throughput of the dense session vs the hashmap reference
/// kernel (reused `SearchScratch`, reused seed buffers — its best case),
/// on the same index and workload. The two loops are interleaved over
/// several rounds (best run each) so machine-speed drift across the
/// measurement window cannot hand either kernel an unearned win.
fn kernel_comparison(
    name: &'static str,
    g: &CsrGraph,
    queries: usize,
    smoke: bool,
) -> KernelComparison {
    let index = IsLabelIndex::build(g, BuildConfig::default());
    let pairs = query_pairs(g.num_vertices(), queries, 0xD15C);
    let h = index.hierarchy();

    let mut scratch = SearchScratch::new();
    let mut fseeds: Vec<(VertexId, Dist)> = Vec::new();
    let mut rseeds: Vec<(VertexId, Dist)> = Vec::new();
    let mut sparse_pass = |sum: &mut u64| -> std::time::Duration {
        *sum = 0;
        let t0 = Instant::now();
        for &(s, t) in &pairs {
            let ls = index.labels().label(s);
            let lt = index.labels().label(t);
            let (mu0, witness) = intersect_min(ls, lt);
            fseeds.clear();
            fseeds.extend(ls.iter().filter(|&(a, _)| h.is_in_gk(a)));
            rseeds.clear();
            rseeds.extend(lt.iter().filter(|&(a, _)| h.is_in_gk(a)));
            let out = label_bi_dijkstra_in(
                h.gk(),
                SearchParams {
                    fseeds: &fseeds,
                    rseeds: &rseeds,
                    mu0,
                    mu0_witness: witness,
                    track_paths: false,
                },
                &mut scratch,
            );
            *sum = sum.wrapping_add(out.dist);
        }
        t0.elapsed()
    };
    let mut session = index.session();
    let mut dense_pass = |sum: &mut u64| -> std::time::Duration {
        *sum = 0;
        let t0 = Instant::now();
        for &(s, t) in &pairs {
            let d = session.distance(s, t).expect("in range").unwrap_or(INF);
            *sum = sum.wrapping_add(d);
        }
        t0.elapsed()
    };

    let (mut sparse_sum, mut dense_sum) = (0u64, 0u64);
    let mut sparse_dt = std::time::Duration::MAX;
    let mut dense_dt = std::time::Duration::MAX;
    for _ in 0..3 {
        sparse_dt = sparse_dt.min(sparse_pass(&mut sparse_sum));
        dense_dt = dense_dt.min(dense_pass(&mut dense_sum));
    }
    assert_eq!(dense_sum, sparse_sum, "kernel disagreement on {name}");
    // Releases the closure's borrow of `session` for the smoke check.
    let _ = dense_pass;
    if smoke {
        for &(s, t) in &pairs {
            assert_eq!(
                session.distance(s, t).expect("in range"),
                dijkstra_p2p(g, s, t),
                "dense kernel vs reference Dijkstra ({s}, {t})"
            );
        }
    }

    KernelComparison {
        graph: name,
        n: g.num_vertices(),
        queries: pairs.len(),
        hashmap_qps: pairs.len() as f64 / sparse_dt.as_secs_f64(),
        dense_qps: pairs.len() as f64 / dense_dt.as_secs_f64(),
    }
}

struct LabelBuild {
    graph: &'static str,
    k: u32,
    entries: usize,
    threads: usize,
    single_ms: f64,
    parallel_ms: f64,
}

/// Parallel vs single-thread `LabelSet::build` over a **deep** hierarchy
/// (fixed k): the σ rule stops ER-like graphs at k = 2, where labeling is
/// a few milliseconds and scheduler noise drowns any comparison; forcing
/// more levels puts construction in the labeling-bound regime the parallel
/// path exists for. Each variant is timed twice and the best run kept.
fn label_build_comparison(name: &'static str, g: &CsrGraph, k: u32) -> LabelBuild {
    let h = islabel_core::hierarchy::VertexHierarchy::build(g, &BuildConfig::fixed_k(k));
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // Interleave the two variants ([1, N] × rounds) and keep each one's
    // best: on a shared box, machine speed drifts across minutes, and
    // back-to-back blocks would hand whichever variant runs in the faster
    // window an unearned win.
    let run = |threads: usize| -> (LabelSet, f64) {
        let t0 = Instant::now();
        let ls = LabelSet::build_with_threads(&h, true, threads);
        (ls, t0.elapsed().as_secs_f64() * 1e3)
    };
    let mut single: Option<(LabelSet, f64)> = None;
    let mut parallel: Option<(LabelSet, f64)> = None;
    for _ in 0..3 {
        let s = run(1);
        if single.as_ref().is_none_or(|(_, b)| s.1 < *b) {
            single = Some(s);
        }
        let p = run(threads);
        if parallel.as_ref().is_none_or(|(_, b)| p.1 < *b) {
            parallel = Some(p);
        }
    }
    let (single, single_ms) = single.expect("rounds ran");
    let (parallel, parallel_ms) = parallel.expect("rounds ran");
    assert_eq!(single, parallel, "parallel labeling must be deterministic");
    LabelBuild {
        graph: name,
        k: h.k(),
        entries: single.num_entries(),
        threads,
        single_ms,
        parallel_ms,
    }
}

struct ObsOverhead {
    graph: &'static str,
    n: usize,
    queries: usize,
    p50_on_us: f64,
    p50_off_us: f64,
    /// `(p50_on − p50_off) / p50_off`, in percent; negative means the
    /// traced run measured faster (noise floor).
    overhead_pct: f64,
}

/// Metrics-on vs metrics-off p50 on the same session and workload: the
/// overhead budget for the observability pass. Metrics-on is the serving
/// default — phase boundaries timed by the session's [`QueryTrace`] and
/// every sample re-emitted to the process-wide `QueryPhases` counters,
/// exactly what the serve/net layers do per query. Metrics-off flips
/// [`QueryTrace::enabled`], which removes even the boundary `Instant`
/// reads. The two variants are interleaved over three rounds (best p50
/// each) and must agree on a distance checksum.
///
/// [`QueryTrace`]: islabel_core::trace::QueryTrace
/// [`QueryTrace::enabled`]: islabel_core::trace::QueryTrace::enabled
fn obs_overhead_bench(name: &'static str, g: &CsrGraph, queries: usize) -> ObsOverhead {
    use islabel_core::oracle::QuerySession;

    let index = IsLabelIndex::build(g, BuildConfig::default());
    let pairs = query_pairs(g.num_vertices(), queries, 0x0B5E);
    let mut session = index.session();
    let phases = islabel_obs::QueryPhases::global();

    // [metrics-on, metrics-off]
    let mut best_p50 = [f64::INFINITY; 2];
    let mut sums = [0u64; 2];
    let mut latencies = Vec::with_capacity(pairs.len());
    for _ in 0..3 {
        for (slot, on) in [(0usize, true), (1usize, false)] {
            session.trace_mut().expect("islabel sessions trace").enabled = on;
            latencies.clear();
            let mut sum = 0u64;
            for &(s, t) in &pairs {
                let t0 = Instant::now();
                let out = session.search_outcome(s, t).expect("in range");
                if on {
                    let l = session.trace().expect("islabel sessions trace").last;
                    phases.record(l.intersect_ns, l.seed_ns, l.search_ns, l.settled);
                }
                latencies.push(t0.elapsed().as_nanos() as u64);
                sum = sum.wrapping_add(out.dist);
            }
            latencies.sort_unstable();
            best_p50[slot] = best_p50[slot].min(percentile_us(&latencies, 0.50));
            sums[slot] = sum;
        }
    }
    assert_eq!(sums[0], sums[1], "tracing changed answers on {name}");

    ObsOverhead {
        graph: name,
        n: g.num_vertices(),
        queries: pairs.len(),
        p50_on_us: best_p50[0],
        p50_off_us: best_p50[1],
        overhead_pct: (best_p50[0] - best_p50[1]) / best_p50[1] * 100.0,
    }
}

fn json_escape_free(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |x| x.to_string())
}

fn to_json(
    mode: &str,
    graphs: &[GraphReport],
    intersect: &IntersectBench,
    layout: &LayoutComparison,
    kernel: &KernelComparison,
    labels: &LabelBuild,
    obs: &ObsOverhead,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"islabel-bench-pr10/v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!(
        "  \"host_threads\": {},\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    ));
    out.push_str("  \"graphs\": [\n");
    for (gi, g) in graphs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"m\": {}, \"engines\": [\n",
            g.name, g.n, g.m
        ));
        for (ei, e) in g.engines.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"engine\": \"{}\", \"build_ms\": {:.2}, \"queries\": {}, \
                 \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"qps\": {:.1}, \"settled_total\": {}}}{}\n",
                e.engine,
                e.build_ms,
                e.queries,
                e.p50_us,
                e.p99_us,
                e.qps,
                json_escape_free(e.settled),
                if ei + 1 < g.engines.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if gi + 1 < graphs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"intersect\": {{\"graph\": \"{}\", \"n\": {}, \"queries\": {}, \"tiers\": [",
        intersect.graph, intersect.n, intersect.queries
    ));
    for (i, (tier, qps)) in intersect.tiers.iter().enumerate() {
        out.push_str(&format!(
            "{}{{\"tier\": \"{tier}\", \"qps\": {qps:.1}}}",
            if i > 0 { ", " } else { "" }
        ));
    }
    out.push_str(&format!(
        "], \"simd_speedup\": {:.3}}},\n",
        intersect.simd_speedup
    ));
    out.push_str(&format!(
        "  \"layout\": {{\"graph\": \"{}\", \"n\": {}, \"m\": {}, \"queries\": {}, \
         \"split_qps\": {:.1}, \"interleaved_qps\": {:.1}, \"speedup\": {:.3}}},\n",
        layout.graph,
        layout.n,
        layout.m,
        layout.queries,
        layout.split_qps,
        layout.interleaved_qps,
        layout.interleaved_qps / layout.split_qps
    ));
    out.push_str(&format!(
        "  \"kernel_comparison\": {{\"graph\": \"{}\", \"n\": {}, \"queries\": {}, \
         \"hashmap_qps\": {:.1}, \"dense_qps\": {:.1}, \"speedup\": {:.3}}},\n",
        kernel.graph,
        kernel.n,
        kernel.queries,
        kernel.hashmap_qps,
        kernel.dense_qps,
        kernel.dense_qps / kernel.hashmap_qps
    ));
    out.push_str(&format!(
        "  \"label_build\": {{\"graph\": \"{}\", \"k\": {}, \"entries\": {}, \"threads\": {}, \
         \"single_thread_ms\": {:.1}, \"parallel_ms\": {:.1}, \"speedup\": {:.3}}},\n",
        labels.graph,
        labels.k,
        labels.entries,
        labels.threads,
        labels.single_ms,
        labels.parallel_ms,
        labels.single_ms / labels.parallel_ms
    ));
    out.push_str(&format!(
        "  \"obs_overhead\": {{\"graph\": \"{}\", \"n\": {}, \"queries\": {}, \
         \"p50_on_us\": {:.3}, \"p50_off_us\": {:.3}, \"overhead_pct\": {:.2}}}\n",
        obs.graph, obs.n, obs.queries, obs.p50_on_us, obs.p50_off_us, obs.overhead_pct
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());

    let n: usize = if smoke {
        400
    } else {
        std::env::var("ISLABEL_HOTPATH_N")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50_000)
    };
    let label_queries: usize = if smoke {
        200
    } else {
        std::env::var("ISLABEL_HOTPATH_QUERIES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10_000)
    };
    let search_queries = if smoke { 200 } else { 1_000 };

    let side = (n as f64).sqrt().round() as usize;
    let graphs: Vec<(&'static str, CsrGraph)> = vec![
        (
            "er",
            erdos_renyi_gnm(n, 3 * n, WeightModel::UniformRange(1, 10), 0x5EED),
        ),
        (
            "ba",
            barabasi_albert(n, 3, WeightModel::UniformRange(1, 10), 0x5EED),
        ),
        (
            "grid",
            grid2d(side, side, WeightModel::UniformRange(1, 10), 0x5EED),
        ),
    ];

    let mut reports = Vec::new();
    for (name, g) in &graphs {
        eprintln!(
            "[query_hotpath] {} (n = {}, m = {}) ...",
            name,
            g.num_vertices(),
            g.num_edges()
        );
        reports.push(bench_graph(name, g, label_queries, search_queries, smoke));
    }

    eprintln!("[query_hotpath] intersection kernel tiers (SIMD vs scalar) ...");
    let intersect = intersect_bench("er", &graphs[0].1, label_queries);
    eprintln!("[query_hotpath] adjacency layout (interleaved vs split) ...");
    let layout = layout_comparison("grid", &graphs[2].1, if smoke { 50 } else { 300 });
    eprintln!("[query_hotpath] kernel comparison (dense vs hashmap) ...");
    let kernel = kernel_comparison("er", &graphs[0].1, label_queries, smoke);
    eprintln!("[query_hotpath] label construction (parallel vs single) ...");
    let labels = label_build_comparison("er", &graphs[0].1, 10);
    eprintln!("[query_hotpath] observability overhead (metrics on vs off) ...");
    let obs = obs_overhead_bench("er", &graphs[0].1, label_queries);

    // Human-readable summary.
    println!(
        "{:<6} {:<15} {:>11} {:>8} {:>9} {:>9} {:>11} {:>12}",
        "graph", "engine", "build_ms", "queries", "p50_us", "p99_us", "qps", "settled"
    );
    for g in &reports {
        for e in &g.engines {
            println!(
                "{:<6} {:<15} {:>11.1} {:>8} {:>9.2} {:>9.2} {:>11.0} {:>12}",
                g.name,
                e.engine,
                e.build_ms,
                e.queries,
                e.p50_us,
                e.p99_us,
                e.qps,
                e.settled.map_or_else(|| "-".into(), |s| s.to_string()),
            );
        }
    }
    let tier_summary = intersect
        .tiers
        .iter()
        .map(|(t, q)| format!("{t} {q:.0}"))
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "intersect: {} ips on {} n={} ({:.2}x best SIMD vs scalar)",
        tier_summary, intersect.graph, intersect.n, intersect.simd_speedup
    );
    println!(
        "layout: interleaved {:.0} qps vs split {:.0} qps ({:.2}x) on {} n={}",
        layout.interleaved_qps,
        layout.split_qps,
        layout.interleaved_qps / layout.split_qps,
        layout.graph,
        layout.n
    );
    println!(
        "kernel: dense {:.0} qps vs hashmap {:.0} qps ({:.2}x) on {} n={}",
        kernel.dense_qps,
        kernel.hashmap_qps,
        kernel.dense_qps / kernel.hashmap_qps,
        kernel.graph,
        kernel.n
    );
    println!(
        "labels: parallel {:.0} ms vs single {:.0} ms ({:.2}x, {} threads, k={}, {} entries)",
        labels.parallel_ms,
        labels.single_ms,
        labels.single_ms / labels.parallel_ms,
        labels.threads,
        labels.k,
        labels.entries
    );
    println!(
        "obs: metrics-on p50 {:.2} us vs metrics-off p50 {:.2} us ({:+.2}%) on {} n={}",
        obs.p50_on_us, obs.p50_off_us, obs.overhead_pct, obs.graph, obs.n
    );

    let json = to_json(
        if smoke { "smoke" } else { "full" },
        &reports,
        &intersect,
        &layout,
        &kernel,
        &labels,
        &obs,
    );
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("wrote {out_path}");
}
