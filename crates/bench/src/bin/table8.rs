//! Reproduces the paper's Table 8. See `islabel-bench` docs for knobs.

fn main() {
    println!("{}", islabel_bench::experiments::table8());
}
