//! Reproduces the paper's Table 2. See `islabel-bench` docs for knobs.

fn main() {
    println!("{}", islabel_bench::experiments::table2());
}
