//! Prints the serving-throughput scaling table: queries/sec through the
//! sharded `QueryService` at 1/2/4/8 worker shards vs the single-thread
//! session baseline (`ISLABEL_SERVE_N` / `ISLABEL_SERVE_QUERIES` size the
//! workload).

fn main() {
    println!("{}", islabel_bench::experiments::serve_throughput());
}
