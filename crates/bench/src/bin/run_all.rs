//! Runs every experiment in sequence — the source of EXPERIMENTS.md.
//!
//! Scale/query-count via `ISLABEL_SCALE` / `ISLABEL_QUERIES`.

use islabel_bench::experiments as ex;

fn main() {
    let scale = std::env::var("ISLABEL_SCALE").unwrap_or_else(|_| "small".into());
    let queries = islabel_bench::env_num_queries();
    println!("IS-LABEL experiment suite  (scale = {scale}, queries = {queries})\n");
    println!("Figures 1-3 are worked examples; they are verified bit-exactly by");
    println!("`cargo test -p islabel-core paper_example` (hierarchy, labels, queries).\n");
    for table in [
        ex::table2(),
        ex::table3(),
        ex::table4(),
        ex::table5(),
        ex::table6(),
        ex::table7(),
        ex::table8(),
        ex::table9(),
        ex::engine_matrix(),
        ex::ablation_strategy(),
        ex::ablation_sigma(),
        ex::ablation_twohop(),
        ex::ablation_parallel(),
    ] {
        println!("{table}");
    }
}
