//! The network-serving benchmark behind `BENCH_PR5.json`: remote
//! queries/sec through a loopback [`DistanceServer`] as a function of
//! client connections × pipeline depth, against the in-process
//! single-session baseline the wire overhead is paid on top of.
//!
//! ```text
//! net_throughput [--smoke] [--out PATH]
//! ```
//!
//! Each remote configuration drives N client connections from N threads;
//! every thread keeps a window of `depth` requests in flight (send,
//! flush, recv, refill), measuring per-request latency from send to
//! response. `--smoke` shrinks the workload and cross-checks **every**
//! remote answer against the in-process truth — the CI gate.
//!
//! Env knobs: `ISLABEL_NET_N` (default 20 000 vertices),
//! `ISLABEL_NET_QUERIES` (default 40 000 per configuration),
//! `ISLABEL_NET_DEPTH` (default 8: the pipelined window per connection).
//!
//! Schema (`islabel-bench-pr5/v1`) — see README § Networking:
//! `graph` describes the ER workload; `inprocess` is the single-thread
//! session baseline (`qps`, `p50_us`, `p99_us`); `remote[]` carries one
//! entry per `{connections, pipeline_depth}` configuration with the same
//! fields; qps scaling with connection count is the headline claim.

use islabel_core::{BuildConfig, IsLabelIndex};
use islabel_graph::generators::{erdos_renyi_gnm, WeightModel};
use islabel_graph::{Dist, VertexId};
use islabel_net::protocol::{Request, Response};
use islabel_net::{DistanceClient, DistanceServer, NetConfig};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

struct RunReport {
    queries: usize,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

struct RemoteReport {
    connections: usize,
    depth: usize,
    run: RunReport,
}

use islabel_bench::timing::percentile_us;

fn finish(mut latencies_ns: Vec<u64>, wall_ns: u64) -> RunReport {
    latencies_ns.sort_unstable();
    RunReport {
        queries: latencies_ns.len(),
        qps: if wall_ns == 0 {
            0.0
        } else {
            latencies_ns.len() as f64 / (wall_ns as f64 / 1e9)
        },
        p50_us: percentile_us(&latencies_ns, 0.50),
        p99_us: percentile_us(&latencies_ns, 0.99),
    }
}

fn workload(n: usize, queries: usize) -> Vec<(VertexId, VertexId)> {
    (0..queries)
        .map(|i| {
            (
                ((i * 2654435761) % n) as VertexId,
                ((i * 40503 + 12345) % n) as VertexId,
            )
        })
        .collect()
}

/// Single-thread in-process session over the same workload: the baseline
/// the wire overhead is paid on top of.
fn inprocess_baseline(index: &IsLabelIndex, pairs: &[(VertexId, VertexId)]) -> RunReport {
    let mut session = index.session();
    let mut lats = Vec::with_capacity(pairs.len());
    let t0 = Instant::now();
    for &(s, t) in pairs {
        let q0 = Instant::now();
        session.distance(s, t).expect("in-range query");
        lats.push(q0.elapsed().as_nanos() as u64);
    }
    finish(lats, t0.elapsed().as_nanos() as u64)
}

/// One remote configuration: `connections` threads, each pipelining a
/// window of `depth` queries over its own connection.
fn remote_run(
    addr: std::net::SocketAddr,
    pairs: &[(VertexId, VertexId)],
    truth: Option<&[Option<Dist>]>,
    connections: usize,
    depth: usize,
) -> RemoteReport {
    let t0 = Instant::now();
    let per_conn = pairs.len().div_ceil(connections);
    let lats: Vec<u64> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..connections)
            .map(|c| {
                let chunk: Vec<(usize, (VertexId, VertexId))> = pairs
                    .iter()
                    .enumerate()
                    .skip(c * per_conn)
                    .take(per_conn)
                    .map(|(i, &p)| (i, p))
                    .collect();
                scope.spawn(move || {
                    let mut client = DistanceClient::connect(addr).expect("connect bench client");
                    let mut lats = Vec::with_capacity(chunk.len());
                    let mut inflight: VecDeque<(u64, usize, Instant)> = VecDeque::new();
                    let mut next = 0;
                    while next < chunk.len() || !inflight.is_empty() {
                        while next < chunk.len() && inflight.len() < depth {
                            let (i, (s, t)) = chunk[next];
                            let sent_at = Instant::now();
                            let id = client.send(&Request::Query { s, t }).expect("send");
                            inflight.push_back((id, i, sent_at));
                            next += 1;
                        }
                        client.flush().expect("flush");
                        let (rid, resp) = client.recv().expect("recv");
                        let (id, i, sent_at) =
                            inflight.pop_front().expect("response without request");
                        assert_eq!(rid, id, "pipelined responses must arrive in order");
                        lats.push(sent_at.elapsed().as_nanos() as u64);
                        if let Some(truth) = truth {
                            assert_eq!(
                                resp,
                                Response::Distance(truth[i]),
                                "remote answer diverged from in-process truth for pair {i}"
                            );
                        }
                    }
                    lats
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("bench client thread panicked"))
            .collect()
    });
    RemoteReport {
        connections,
        depth,
        run: finish(lats, t0.elapsed().as_nanos() as u64),
    }
}

fn to_json(
    mode: &str,
    n: usize,
    m: usize,
    inprocess: &RunReport,
    remote: &[RemoteReport],
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"islabel-bench-pr5/v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!(
        "  \"graph\": {{\"name\": \"er\", \"n\": {n}, \"m\": {m}}},\n  \"engine\": \"islabel\",\n"
    ));
    out.push_str(&format!(
        "  \"inprocess\": {{\"queries\": {}, \"qps\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}}},\n",
        inprocess.queries, inprocess.qps, inprocess.p50_us, inprocess.p99_us
    ));
    out.push_str("  \"remote\": [\n");
    for (i, r) in remote.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"connections\": {}, \"pipeline_depth\": {}, \"queries\": {}, \
             \"qps\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}}}{}\n",
            r.connections,
            r.depth,
            r.run.queries,
            r.run.qps,
            r.run.p50_us,
            r.run.p99_us,
            if i + 1 < remote.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR5.json".to_string());

    let n: usize = if smoke {
        300
    } else {
        std::env::var("ISLABEL_NET_N")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20_000)
    };
    let queries: usize = if smoke {
        2_000
    } else {
        std::env::var("ISLABEL_NET_QUERIES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(40_000)
    };

    let g = erdos_renyi_gnm(n, 3 * n, WeightModel::UniformRange(1, 10), 0x5EED);
    let m = g.num_edges();
    eprintln!("[net_throughput] building IS-LABEL over er n={n} m={m} ...");
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    let pairs = workload(n, queries);

    eprintln!("[net_throughput] in-process single-session baseline ...");
    let inprocess = inprocess_baseline(&index, &pairs);

    // Smoke mode cross-checks every remote answer against this truth.
    let truth: Option<Vec<Option<Dist>>> = smoke.then(|| {
        let mut session = index.session();
        pairs
            .iter()
            .map(|&(s, t)| session.distance(s, t).unwrap())
            .collect()
    });

    let server = DistanceServer::start(Arc::new(index), "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback server");
    let addr = server.local_addr();
    eprintln!("[net_throughput] serving on {addr}");

    let depth: usize = std::env::var("ISLABEL_NET_DEPTH")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&d| d > 0)
        .unwrap_or(8);
    let configs: Vec<(usize, usize)> = if smoke {
        vec![(1, 1), (1, depth), (2, depth), (4, depth)]
    } else {
        vec![(1, 1), (1, depth), (2, depth), (4, depth), (8, depth)]
    };
    let mut remote = Vec::new();
    for &(connections, depth) in &configs {
        eprintln!("[net_throughput] remote: {connections} conn x depth {depth} ...");
        remote.push(remote_run(
            addr,
            &pairs,
            truth.as_deref(),
            connections,
            depth,
        ));
    }
    let server_stats = server.shutdown();

    println!(
        "{:<22} {:>8} {:>11} {:>9} {:>9}",
        "configuration", "queries", "qps", "p50_us", "p99_us"
    );
    println!(
        "{:<22} {:>8} {:>11.0} {:>9.2} {:>9.2}",
        "in-process (1 thread)",
        inprocess.queries,
        inprocess.qps,
        inprocess.p50_us,
        inprocess.p99_us
    );
    for r in &remote {
        println!(
            "{:<22} {:>8} {:>11.0} {:>9.2} {:>9.2}",
            format!("remote {}c x d{}", r.connections, r.depth),
            r.run.queries,
            r.run.qps,
            r.run.p50_us,
            r.run.p99_us
        );
    }
    println!(
        "server: {} queries, {} connections, service p50 {:.1} µs / p99 {:.1} µs",
        server_stats.queries,
        server_stats.connections_total,
        server_stats.latency.p50().as_secs_f64() * 1e6,
        server_stats.latency.p99().as_secs_f64() * 1e6
    );
    if smoke {
        println!("smoke OK: every remote answer matched the in-process session");
    }

    let json = to_json(
        if smoke { "smoke" } else { "full" },
        n,
        m,
        &inprocess,
        &remote,
    );
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("wrote {out_path}");
}
