//! Reproduces the paper's Table 9. See `islabel-bench` docs for knobs.

fn main() {
    println!("{}", islabel_bench::experiments::table9());
}
