//! The artifact-load benchmark behind `BENCH_PR8.json`: how fast an index
//! becomes servable from disk, across the three load paths that exist
//! after the v3 flat format landed.
//!
//! ```text
//! load_time [--smoke] [--out PATH]
//! ```
//!
//! Four numbers are measured over the same index saved twice (v2 stream
//! and v3 flat):
//!
//! * `heap_load_v2_ms` — full deserialization of the legacy v2 stream
//!   (the pre-PR-8 baseline: every byte parsed, every array copied);
//! * `heap_load_v3_ms` — the v3 heap loader (validated sections, then
//!   materialized — same end state, flat parsing);
//! * `mmap_open_ms` — `MmapIndex::open`: map + checksum + validate, no
//!   materialization. This is the PR-8 acceptance number: at the full
//!   n = 50 000 it must be ≥ 10x faster than `heap_load_v2_ms`;
//! * `first_query_warm_ms` — cold `MmapIndex::open` through the first
//!   answered query, the "time to first answer after reload" a server
//!   actually experiences on hot swap.
//!
//! Every run cross-checks the mmap engine bit-for-bit against the heap
//! engine over the sampled query pairs before any timing is reported.
//! `--smoke` shrinks the graph (and skips the ≥ 10x assertion — tiny
//! artifacts are dominated by syscall constants, not byte volume). Env
//! knobs: `ISLABEL_LOAD_N` (default 50 000 vertices), `ISLABEL_LOAD_REPS`
//! (default 5 timed repetitions, median reported), `ISLABEL_LOAD_QUERIES`
//! (default 500 cross-checked pairs).
//!
//! Schema (`islabel-bench-pr8/v1`): `artifact.{v2_bytes,v3_bytes}`,
//! `load.{heap_load_v2_ms,heap_load_v3_ms,mmap_open_ms,first_query_warm_ms}`
//! (medians), and `mmap_open_speedup_vs_v2` — the acceptance ratio.

use islabel_core::persist::{load_index_from_path, save_index_to_path, save_index_v2_to_path};
use islabel_core::{BuildConfig, DistanceOracle, IsLabelIndex, MmapIndex};
use islabel_graph::generators::{barabasi_albert, WeightModel};
use islabel_graph::VertexId;
use std::path::PathBuf;
use std::time::Instant;

fn query_pairs(n: usize, count: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..count)
        .map(|_| {
            let s = (next() % n as u64) as VertexId;
            let mut t = (next() % n as u64) as VertexId;
            if t == s {
                t = (t + 1) % n as VertexId;
            }
            (s, t)
        })
        .collect()
}

/// Times `reps` runs of `f`, returning the median wall-clock in ms. The
/// result of each run is dropped inside the timed region on purpose: for
/// heap loads the drop is part of the cost a reload pays, and excluding
/// it would flatter the baseline the mmap path is compared against.
fn median_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let r = f();
            let elapsed = t0.elapsed().as_secs_f64() * 1e3;
            drop(r);
            elapsed
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR8.json".to_string());

    let env_or = |key: &str, default: usize| -> usize {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let n = if smoke {
        2_000
    } else {
        env_or("ISLABEL_LOAD_N", 50_000)
    };
    let reps = env_or("ISLABEL_LOAD_REPS", 5).max(1);
    let queries = if smoke {
        200
    } else {
        env_or("ISLABEL_LOAD_QUERIES", 500)
    };

    let g = barabasi_albert(n, 3, WeightModel::UniformRange(1, 10), 0x10AD);
    eprintln!(
        "[load_time] building index (n = {n}, m = {}) ...",
        g.num_edges()
    );
    let t0 = Instant::now();
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let dir: PathBuf =
        std::env::temp_dir().join(format!("islabel-load-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench tempdir");
    let v2_path = dir.join("bench-v2.islx");
    let v3_path = dir.join("bench-v3.islx");
    save_index_v2_to_path(&index, &v2_path).expect("save v2 artifact");
    save_index_to_path(&index, &v3_path).expect("save v3 artifact");
    let v2_bytes = std::fs::metadata(&v2_path).expect("stat v2").len();
    let v3_bytes = std::fs::metadata(&v3_path).expect("stat v3").len();

    // Correctness first: the mapped engine must answer bit-for-bit like
    // the heap engine before its open time means anything.
    eprintln!("[load_time] cross-checking mmap vs heap over {queries} pairs ...");
    let pairs = query_pairs(n, queries, 0xD15C ^ n as u64);
    let mapped = MmapIndex::open(&v3_path).expect("open mmap engine");
    let mut heap_session = index.session();
    let mut mmap_session = mapped.session();
    for &(s, t) in &pairs {
        let want = heap_session.distance(s, t).expect("heap in range");
        let got = mmap_session.distance(s, t).expect("mmap in range");
        assert_eq!(got, want, "mmap engine diverged on ({s}, {t})");
    }
    drop(mmap_session);
    drop(heap_session);
    drop(mapped);

    eprintln!("[load_time] timing {reps} reps per path ...");
    let heap_load_v2_ms = median_ms(reps, || {
        load_index_from_path(&v2_path).expect("load v2 stream")
    });
    let heap_load_v3_ms = median_ms(reps, || {
        load_index_from_path(&v3_path).expect("load v3 flat")
    });
    let mmap_open_ms = median_ms(reps, || MmapIndex::open(&v3_path).expect("open mmap"));
    let (first_s, first_t) = pairs.first().copied().unwrap_or((0, 1));
    let first_query_warm_ms = median_ms(reps, || {
        let m = MmapIndex::open(&v3_path).expect("open mmap");
        m.try_distance(first_s, first_t).expect("first query")
    });
    std::fs::remove_dir_all(&dir).ok();

    let speedup = heap_load_v2_ms / mmap_open_ms.max(1e-9);
    println!("{:<22} {:>12}", "path", "median_ms");
    for (name, ms) in [
        ("heap_load_v2", heap_load_v2_ms),
        ("heap_load_v3", heap_load_v3_ms),
        ("mmap_open", mmap_open_ms),
        ("first_query_warm", first_query_warm_ms),
    ] {
        println!("{name:<22} {ms:>12.3}");
    }
    println!(
        "artifact bytes: v2 = {v2_bytes}, v3 = {v3_bytes}; \
         mmap_open speedup vs v2 heap load: {speedup:.1}x"
    );
    if !smoke {
        assert!(
            speedup >= 10.0,
            "acceptance: mmap open must be >= 10x faster than v2 heap load, got {speedup:.1}x"
        );
    }

    let json = format!(
        "{{\n  \"schema\": \"islabel-bench-pr8/v1\",\n  \"mode\": \"{}\",\n  \
         \"graph\": {{\"name\": \"ba\", \"n\": {}, \"m\": {}}},\n  \"build_ms\": {:.2},\n  \
         \"artifact\": {{\"v2_bytes\": {}, \"v3_bytes\": {}}},\n  \
         \"reps\": {},\n  \"cross_checked_pairs\": {},\n  \"load\": {{\n    \
         \"heap_load_v2_ms\": {:.3},\n    \"heap_load_v3_ms\": {:.3},\n    \
         \"mmap_open_ms\": {:.3},\n    \"first_query_warm_ms\": {:.3}\n  }},\n  \
         \"mmap_open_speedup_vs_v2\": {:.2}\n}}\n",
        if smoke { "smoke" } else { "full" },
        n,
        g.num_edges(),
        build_ms,
        v2_bytes,
        v3_bytes,
        reps,
        pairs.len(),
        heap_load_v2_ms,
        heap_load_v3_ms,
        mmap_open_ms,
        first_query_warm_ms,
        speedup
    );
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("wrote {out_path}");
}
