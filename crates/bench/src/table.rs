//! Minimal ASCII table renderer for experiment output.

/// A simple left-aligned ASCII table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Replaces the title.
    pub fn set_title(&mut self, title: impl Into<String>) {
        self.title = title.into();
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 3 * cols + 1;
        writeln!(f, "{}", self.title)?;
        writeln!(f, "{}", "=".repeat(total.min(100)))?;
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {cell:<w$} |", w = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        write_row(f, &sep)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.contains("| name   | value |"), "{s}");
        assert!(s.contains("| longer | 22    |"), "{s}");
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
