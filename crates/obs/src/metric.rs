//! The two scalar metric primitives: a monotonic [`Counter`] and a
//! signed [`Gauge`]. Both are single relaxed atomics — cheap enough to
//! bump once per event at the serving layer, never inside a kernel loop
//! (see the [crate docs](crate) for the placement invariant).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — independent monotonic event counter; the
        // exposition snapshot tolerates tearing across counters by design.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — same counter discipline as `add`.
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A last-value-wins signed gauge (queue depths, active connections,
/// generation numbers).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        // ordering: Relaxed — last-value-wins gauge; no memory is
        // published through it.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via `sub`).
    #[inline]
    pub fn add(&self, n: i64) {
        // ordering: Relaxed — same gauge discipline as `set`.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        // ordering: Relaxed — same gauge discipline as `set`.
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);

        let g = Gauge::new();
        g.set(5);
        g.add(2);
        g.sub(4);
        assert_eq!(g.get(), 3);
    }
}
