#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # islabel-obs
//!
//! The observability core of the IS-LABEL workspace: a zero-dependency
//! metrics library every other crate can sit on top of — counters,
//! gauges, the power-of-two latency histogram shared by the serving
//! layers, a process-wide [`Registry`] with Prometheus-text exposition,
//! and a threshold-gated [`SlowQueryLog`].
//!
//! The paper's experimental story (IS-LABEL, VLDB 2013 §6) is a story
//! about *per-phase* cost: label sizes, `G_k` search settle counts,
//! I/O vs in-memory time. This crate gives the repo the machinery to
//! report those phases from a running server without perturbing them.
//!
//! ## Counter-placement invariant
//!
//! Instrumentation must never sit inside the query hot loops it
//! measures. Concretely:
//!
//! * **No atomics inside the SIMD kernel inner loop.** The Equation-1
//!   intersection kernels (`islabel-core::kernel`) and the dense
//!   bidirectional Dijkstra touch no shared cache line per element —
//!   a single atomic `fetch_add` in those loops would serialize every
//!   worker on one cache line and swamp the nanosecond-scale work being
//!   counted. All shared counters ([`Counter`], [`Gauge`],
//!   [`AtomicLatencyHistogram`]) are updated **once per query** (or per
//!   batch) at the serving layer, after the kernel returns.
//! * **Phase timing reads `Instant` only at phase boundaries.** The
//!   per-session `QueryTrace` in `islabel-core` records the seed-fetch /
//!   Equation-1 intersect / dense-search split with at most four
//!   `Instant::now()` reads per query — one at each phase edge, none
//!   inside a loop — and accumulates into plain (non-atomic, pre-sized)
//!   session-local fields, so the counting-allocator audit
//!   (`tests/alloc_free.rs`) and the `lint.toml` alloc zones hold with
//!   tracing active.
//! * **Exposition never blocks recording.** Owned handles are plain
//!   relaxed atomics; [`Registry::render`] takes the registry mutex only
//!   to walk the family list, reading each series with relaxed loads.
//!   Recording a metric never takes a lock.
//!
//! Every metric family name is a `METRIC_*` constant in [`names`] and is
//! mirrored in `docs/wire_registry.toml` (`[metric_names]`); renaming a
//! metric without updating the registry is a CI failure
//! (`islabel-lint`, rule `wire-registry`) — scrape dashboards are a
//! compatibility surface just like the wire protocol.

pub mod hist;
pub mod metric;
pub mod names;
pub mod phases;
pub mod registry;
pub mod slowlog;

pub use hist::{AtomicLatencyHistogram, LatencyHistogram, LATENCY_BUCKETS};
pub use metric::{Counter, Gauge};
pub use phases::QueryPhases;
pub use registry::{MetricKind, Registry};
pub use slowlog::{SlowQuery, SlowQueryLog};
