//! Every metric family name exported by the workspace, as `METRIC_*`
//! constants. This file is a compatibility surface: `islabel-lint`
//! (rule `wire-registry`) extracts these constants and diffs them
//! against the `[metric_names]` section of `docs/wire_registry.toml`,
//! so renaming a metric silently — breaking every dashboard scraping it
//! — is a CI failure, exactly like renumbering a wire opcode.

/// Queries answered by a `QueryService` shard (label `shard`).
pub const METRIC_SERVE_QUERIES_TOTAL: &str = "islabel_serve_queries_total";
/// Batch chunks processed by a `QueryService` shard (label `shard`).
pub const METRIC_SERVE_BATCHES_TOTAL: &str = "islabel_serve_batches_total";
/// Typed query errors per shard (label `shard`).
pub const METRIC_SERVE_ERRORS_TOTAL: &str = "islabel_serve_errors_total";
/// Hot-swap refreshes observed by the shard workers (label `shard`).
pub const METRIC_SERVE_SWAPS_OBSERVED_TOTAL: &str = "islabel_serve_swaps_observed_total";
/// Wall-clock nanoseconds the shard workers spent answering (label `shard`).
pub const METRIC_SERVE_BUSY_NANOSECONDS_TOTAL: &str = "islabel_serve_busy_nanoseconds_total";
/// In-worker service-time distribution, all shards merged.
pub const METRIC_SERVE_QUERY_LATENCY_SECONDS: &str = "islabel_serve_query_latency_seconds";

/// Cumulative query-phase time (label `phase`: intersect/seed/search).
pub const METRIC_QUERY_PHASE_NANOSECONDS_TOTAL: &str = "islabel_query_phase_nanoseconds_total";
/// Dense-search settled vertices, summed over traced queries.
pub const METRIC_QUERY_SETTLED_TOTAL: &str = "islabel_query_settled_total";
/// Queries whose phase trace was recorded.
pub const METRIC_QUERY_TRACED_TOTAL: &str = "islabel_query_traced_total";
/// Queries that crossed the slow-query threshold.
pub const METRIC_SLOW_QUERIES_TOTAL: &str = "islabel_slow_queries_total";

/// Connections accepted by the network server since start.
pub const METRIC_NET_CONNECTIONS_TOTAL: &str = "islabel_net_connections_total";
/// Currently open network connections.
pub const METRIC_NET_CONNECTIONS_ACTIVE: &str = "islabel_net_connections_active";
/// Frames decoded by the network server.
pub const METRIC_NET_FRAMES_TOTAL: &str = "islabel_net_frames_total";
/// Single queries answered over the wire.
pub const METRIC_NET_QUERIES_TOTAL: &str = "islabel_net_queries_total";
/// Batch requests answered over the wire.
pub const METRIC_NET_BATCHES_TOTAL: &str = "islabel_net_batches_total";
/// Error responses sent over the wire.
pub const METRIC_NET_ERRORS_TOTAL: &str = "islabel_net_errors_total";
/// Per-query service-time distribution inside the network server.
pub const METRIC_NET_QUERY_LATENCY_SECONDS: &str = "islabel_net_query_latency_seconds";
/// Snapshot generation (hot-swap version) the server currently serves.
pub const METRIC_NET_SNAPSHOT_GENERATION: &str = "islabel_net_snapshot_generation";

/// WAL records appended.
pub const METRIC_WAL_APPENDS_TOTAL: &str = "islabel_wal_appends_total";
/// WAL fsync batches (group commits) issued.
pub const METRIC_WAL_FSYNC_BATCHES_TOTAL: &str = "islabel_wal_fsync_batches_total";
/// WAL recoveries by outcome (label `outcome`: clean/created/truncated/
/// discarded_stale).
pub const METRIC_WAL_RECOVERIES_TOTAL: &str = "islabel_wal_recoveries_total";
/// Operations seen during WAL recovery (label `kind`: replayed/
/// discarded_stale).
pub const METRIC_WAL_RECOVERED_OPS_TOTAL: &str = "islabel_wal_recovered_ops_total";

/// Store artifacts opened (label `backing`: mmap/heap).
pub const METRIC_STORE_OPENS_TOTAL: &str = "islabel_store_opens_total";
/// Validate-on-open outcomes (label `outcome`: ok/error).
pub const METRIC_STORE_VALIDATE_TOTAL: &str = "islabel_store_validate_total";

/// Background compactions by outcome (label `outcome`: ok/busy/failed).
pub const METRIC_COMPACTIONS_TOTAL: &str = "islabel_compactions_total";
/// Overlay operations folded into rebuilt indexes.
pub const METRIC_COMPACT_FOLDED_OPS_TOTAL: &str = "islabel_compact_folded_ops_total";
/// WAL operations replayed on top of rebuilt indexes.
pub const METRIC_COMPACT_REPLAYED_OPS_TOTAL: &str = "islabel_compact_replayed_ops_total";
