//! Process-wide query-phase counters: the serving layers drain each
//! session's `QueryTrace` sample here once per query, after the kernel
//! returns (the counter-placement invariant in the [crate docs](crate)).

use crate::metric::Counter;
use crate::names::{
    METRIC_QUERY_PHASE_NANOSECONDS_TOTAL, METRIC_QUERY_SETTLED_TOTAL, METRIC_QUERY_TRACED_TOTAL,
};
use crate::registry::Registry;
use std::sync::{Arc, OnceLock};

/// Owned handles for the per-phase totals; one relaxed add per phase per
/// query at the serving layer.
#[derive(Debug)]
pub struct QueryPhases {
    intersect_ns: Arc<Counter>,
    seed_ns: Arc<Counter>,
    search_ns: Arc<Counter>,
    settled: Arc<Counter>,
    traced: Arc<Counter>,
}

impl QueryPhases {
    /// Handles registered on `registry`.
    pub fn with_registry(registry: &Registry) -> Self {
        const PHASE_HELP: &str =
            "Cumulative query time by phase (Equation-1 intersect / seed fetch / dense search).";
        Self {
            intersect_ns: registry.counter(
                METRIC_QUERY_PHASE_NANOSECONDS_TOTAL,
                PHASE_HELP,
                &[("phase", "intersect")],
            ),
            seed_ns: registry.counter(
                METRIC_QUERY_PHASE_NANOSECONDS_TOTAL,
                PHASE_HELP,
                &[("phase", "seed")],
            ),
            search_ns: registry.counter(
                METRIC_QUERY_PHASE_NANOSECONDS_TOTAL,
                PHASE_HELP,
                &[("phase", "search")],
            ),
            settled: registry.counter(
                METRIC_QUERY_SETTLED_TOTAL,
                "Vertices settled by the dense G_k search, summed over queries.",
                &[],
            ),
            traced: registry.counter(
                METRIC_QUERY_TRACED_TOTAL,
                "Queries whose phase trace was recorded.",
                &[],
            ),
        }
    }

    /// The handles on [`Registry::global`].
    pub fn global() -> &'static QueryPhases {
        static GLOBAL: OnceLock<QueryPhases> = OnceLock::new();
        GLOBAL.get_or_init(|| QueryPhases::with_registry(Registry::global()))
    }

    /// Adds one traced query's phase sample.
    #[inline]
    pub fn record(&self, intersect_ns: u64, seed_ns: u64, search_ns: u64, settled: u64) {
        self.intersect_ns.add(intersect_ns);
        self.seed_ns.add(seed_ns);
        self.search_ns.add(search_ns);
        self.settled.add(settled);
        self.traced.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_land_in_labeled_series() {
        let r = Registry::new();
        let p = QueryPhases::with_registry(&r);
        p.record(10, 20, 30, 4);
        p.record(1, 2, 3, 5);
        let text = r.render();
        assert!(
            text.contains("islabel_query_phase_nanoseconds_total{phase=\"intersect\"} 11"),
            "{text}"
        );
        assert!(
            text.contains("islabel_query_phase_nanoseconds_total{phase=\"seed\"} 22"),
            "{text}"
        );
        assert!(
            text.contains("islabel_query_phase_nanoseconds_total{phase=\"search\"} 33"),
            "{text}"
        );
        assert!(text.contains("islabel_query_settled_total 9"), "{text}");
        assert!(text.contains("islabel_query_traced_total 2"), "{text}");
    }
}
