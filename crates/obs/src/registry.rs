//! The metric [`Registry`]: named families of labeled series, each
//! backed either by an owned handle (an `Arc`'d atomic the hot path
//! bumps directly) or by a collector closure sampled at exposition time,
//! plus the Prometheus-text encoder.
//!
//! Registration is get-or-create: asking twice for the same
//! `(name, labels)` returns the same handle, so independent subsystems
//! (or repeated server restarts in one process) converge on one series.
//! Collector closures instead *replace* on the same `(name, labels)` —
//! a restarted server's closures capture the live state, and the stale
//! ones from the retired instance are dropped.

use crate::hist::{AtomicLatencyHistogram, LatencyHistogram, LATENCY_BUCKETS};
use crate::metric::{Counter, Gauge};
use std::sync::{Arc, Mutex, OnceLock};

/// What a family measures; fixed at first registration. Registering the
/// same name again with a different kind is a programmer error and
/// panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Last-value-wins signed level.
    Gauge,
    /// Power-of-two latency distribution ([`LatencyHistogram`]).
    Histogram,
}

impl MetricKind {
    fn exposition_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Source {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<AtomicLatencyHistogram>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    GaugeFn(Box<dyn Fn() -> i64 + Send + Sync>),
    HistogramFn(Box<dyn Fn() -> LatencyHistogram + Send + Sync>),
}

struct Series {
    labels: Vec<(String, String)>,
    source: Source,
}

struct Family {
    name: &'static str,
    help: &'static str,
    kind: MetricKind,
    series: Vec<Series>,
}

/// A set of metric families. Most code uses the process-wide
/// [`Registry::global`]; tests build private registries with
/// [`Registry::new`].
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("Registry")
            .field("families", &families.len())
            .finish()
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            families: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide registry every layer registers into; this is
    /// what the wire `Metrics` opcode and the CLI `metrics` command
    /// render.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn family<'a>(
        families: &'a mut Vec<Family>,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
    ) -> &'a mut Family {
        if let Some(i) = families.iter().position(|f| f.name == name) {
            assert_eq!(
                families[i].kind, kind,
                "metric {name} registered with two kinds"
            );
            return &mut families[i];
        }
        families.push(Family {
            name,
            help,
            kind,
            series: Vec::new(),
        });
        let last = families.len() - 1;
        &mut families[last]
    }

    /// Get-or-create an owned counter series.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        let labels = owned_labels(labels);
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = Self::family(&mut families, name, help, MetricKind::Counter);
        if let Some(s) = family.series.iter().find(|s| s.labels == labels) {
            if let Source::Counter(c) = &s.source {
                return Arc::clone(c);
            }
        }
        let handle = Arc::new(Counter::new());
        Self::upsert(family, labels, Source::Counter(Arc::clone(&handle)));
        handle
    }

    /// Get-or-create an owned gauge series.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        let labels = owned_labels(labels);
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = Self::family(&mut families, name, help, MetricKind::Gauge);
        if let Some(s) = family.series.iter().find(|s| s.labels == labels) {
            if let Source::Gauge(g) = &s.source {
                return Arc::clone(g);
            }
        }
        let handle = Arc::new(Gauge::new());
        Self::upsert(family, labels, Source::Gauge(Arc::clone(&handle)));
        handle
    }

    /// Get-or-create an owned histogram series.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<AtomicLatencyHistogram> {
        let labels = owned_labels(labels);
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = Self::family(&mut families, name, help, MetricKind::Histogram);
        if let Some(s) = family.series.iter().find(|s| s.labels == labels) {
            if let Source::Histogram(h) = &s.source {
                return Arc::clone(h);
            }
        }
        let handle = Arc::new(AtomicLatencyHistogram::new());
        Self::upsert(family, labels, Source::Histogram(Arc::clone(&handle)));
        handle
    }

    /// Registers (or replaces) a counter collector sampled at exposition.
    pub fn counter_fn(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        let labels = owned_labels(labels);
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = Self::family(&mut families, name, help, MetricKind::Counter);
        Self::upsert(family, labels, Source::CounterFn(Box::new(f)));
    }

    /// Registers (or replaces) a gauge collector sampled at exposition.
    pub fn gauge_fn(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        f: impl Fn() -> i64 + Send + Sync + 'static,
    ) {
        let labels = owned_labels(labels);
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = Self::family(&mut families, name, help, MetricKind::Gauge);
        Self::upsert(family, labels, Source::GaugeFn(Box::new(f)));
    }

    /// Registers (or replaces) a histogram collector sampled at
    /// exposition.
    pub fn histogram_fn(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        f: impl Fn() -> LatencyHistogram + Send + Sync + 'static,
    ) {
        let labels = owned_labels(labels);
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = Self::family(&mut families, name, help, MetricKind::Histogram);
        Self::upsert(family, labels, Source::HistogramFn(Box::new(f)));
    }

    fn upsert(family: &mut Family, labels: Vec<(String, String)>, source: Source) {
        if let Some(s) = family.series.iter_mut().find(|s| s.labels == labels) {
            s.source = source;
        } else {
            family.series.push(Series { labels, source });
        }
    }

    /// Renders the whole registry as Prometheus text exposition
    /// (families sorted by name, series sorted by label signature, so
    /// output is deterministic and diffable).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// [`render`](Self::render) into an existing buffer.
    pub fn render_into(&self, out: &mut String) {
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        families.sort_by_key(|f| f.name);
        for family in families.iter_mut() {
            family.series.sort_by_key(|a| label_signature(&a.labels));
        }
        for family in families.iter() {
            out.push_str("# HELP ");
            out.push_str(family.name);
            out.push(' ');
            push_escaped_help(out, family.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(family.name);
            out.push(' ');
            out.push_str(family.kind.exposition_name());
            out.push('\n');
            for series in &family.series {
                render_series(out, family.name, series);
            }
        }
    }
}

fn label_signature(labels: &[(String, String)]) -> String {
    let mut sig = String::new();
    for (k, v) in labels {
        sig.push_str(k);
        sig.push('\u{1}');
        sig.push_str(v);
        sig.push('\u{2}');
    }
    sig
}

fn render_series(out: &mut String, name: &str, series: &Series) {
    match &series.source {
        Source::Counter(c) => render_scalar(out, name, &series.labels, &c.get().to_string()),
        Source::CounterFn(f) => render_scalar(out, name, &series.labels, &f().to_string()),
        Source::Gauge(g) => render_scalar(out, name, &series.labels, &g.get().to_string()),
        Source::GaugeFn(f) => render_scalar(out, name, &series.labels, &f().to_string()),
        Source::Histogram(h) => render_histogram(out, name, &series.labels, &h.snapshot()),
        Source::HistogramFn(f) => render_histogram(out, name, &series.labels, &f()),
    }
}

fn render_scalar(out: &mut String, name: &str, labels: &[(String, String)], value: &str) {
    out.push_str(name);
    push_labels(out, labels, None);
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    h: &LatencyHistogram,
) {
    // Cumulative `le` buckets in seconds: bucket i's upper edge is
    // 2^{i+1} ns; the top bucket is open-ended and becomes `+Inf`.
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets().iter().enumerate() {
        cumulative += c;
        if i == LATENCY_BUCKETS - 1 {
            break;
        }
        let le_seconds = (1u64 << (i + 1)) as f64 / 1e9;
        out.push_str(name);
        out.push_str("_bucket");
        push_labels(out, labels, Some(&le_seconds.to_string()));
        out.push(' ');
        out.push_str(&cumulative.to_string());
        out.push('\n');
    }
    let total = h.count();
    out.push_str(name);
    out.push_str("_bucket");
    push_labels(out, labels, Some("+Inf"));
    out.push(' ');
    out.push_str(&total.to_string());
    out.push('\n');
    out.push_str(name);
    out.push_str("_sum");
    push_labels(out, labels, None);
    out.push(' ');
    out.push_str(&(h.sum_nanos() as f64 / 1e9).to_string());
    out.push('\n');
    out.push_str(name);
    out.push_str("_count");
    push_labels(out, labels, None);
    out.push(' ');
    out.push_str(&total.to_string());
    out.push('\n');
}

fn push_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        push_escaped_value(out, v);
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

/// Escapes a label value per the Prometheus text format: backslash,
/// double quote, and newline.
fn push_escaped_value(out: &mut String, v: &str) {
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Escapes HELP text: backslash and newline (quotes are legal there).
fn push_escaped_help(out: &mut String, v: &str) {
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn get_or_create_returns_the_same_handle() {
        let r = Registry::new();
        let a = r.counter("islabel_test_total", "help", &[("shard", "0")]);
        let b = r.counter("islabel_test_total", "help", &[("shard", "0")]);
        let other = r.counter("islabel_test_total", "help", &[("shard", "1")]);
        a.add(3);
        b.add(4);
        other.inc();
        assert_eq!(a.get(), 7);
        assert_eq!(other.get(), 1);
    }

    #[test]
    #[should_panic(expected = "two kinds")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("islabel_kind_test", "help", &[]);
        let _ = r.gauge("islabel_kind_test", "help", &[]);
    }

    #[test]
    fn collector_replaces_on_same_labels() {
        let r = Registry::new();
        r.counter_fn("islabel_fn_total", "help", &[], || 1);
        r.counter_fn("islabel_fn_total", "help", &[], || 42);
        let text = r.render();
        assert!(text.contains("islabel_fn_total 42"), "{text}");
        assert!(!text.contains("islabel_fn_total 1\n"), "{text}");
    }

    #[test]
    fn exposition_golden_scalar_and_escaping() {
        let r = Registry::new();
        let c = r.counter(
            "islabel_golden_total",
            "Queries with \"odd\\chars\"\nand a newline.",
            &[("path", "a\\b\"c\nd"), ("shard", "0")],
        );
        c.add(7);
        r.gauge("islabel_golden_gauge", "A level.", &[]).set(-3);
        let text = r.render();
        let expect = concat!(
            "# HELP islabel_golden_gauge A level.\n",
            "# TYPE islabel_golden_gauge gauge\n",
            "islabel_golden_gauge -3\n",
            "# HELP islabel_golden_total Queries with \"odd\\\\chars\"\\nand a newline.\n",
            "# TYPE islabel_golden_total counter\n",
            "islabel_golden_total{path=\"a\\\\b\\\"c\\nd\",shard=\"0\"} 7\n",
        );
        assert_eq!(text, expect);
    }

    #[test]
    fn exposition_golden_histogram_le_buckets() {
        let r = Registry::new();
        let h = r.histogram("islabel_golden_seconds", "Latency.", &[("shard", "1")]);
        h.record(Duration::from_nanos(1)); // bucket 0 (le 2e-9)
        h.record(Duration::from_nanos(3)); // bucket 1 (le 4e-9)
        h.record(Duration::from_secs(3600)); // top bucket -> +Inf only
        let text = r.render();
        assert!(
            text.contains("islabel_golden_seconds_bucket{shard=\"1\",le=\"0.000000002\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("islabel_golden_seconds_bucket{shard=\"1\",le=\"0.000000004\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("islabel_golden_seconds_bucket{shard=\"1\",le=\"+Inf\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("islabel_golden_seconds_sum{shard=\"1\"} 3600.000000004\n"),
            "{text}"
        );
        assert!(
            text.contains("islabel_golden_seconds_count{shard=\"1\"} 3\n"),
            "{text}"
        );
        // `le` is strictly increasing and every non-`+Inf` bucket edge is
        // a power of two in nanoseconds.
        let edges: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("_bucket{") && !l.contains("+Inf"))
            .collect();
        assert_eq!(edges.len(), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn label_order_is_deterministic_across_registration_order() {
        let r = Registry::new();
        r.counter("islabel_order_total", "h", &[("shard", "1")])
            .inc();
        r.counter("islabel_order_total", "h", &[("shard", "0")])
            .inc();
        let text = r.render();
        let s0 = text.find("shard=\"0\"").unwrap();
        let s1 = text.find("shard=\"1\"").unwrap();
        assert!(s0 < s1, "series are sorted by label signature: {text}");
    }

    #[test]
    fn concurrent_increments_match_serial_ground_truth() {
        let r = Registry::new();
        let threads = 8;
        let per_thread = 10_000u64;
        let c = r.counter("islabel_stress_total", "h", &[]);
        let h = r.histogram("islabel_stress_seconds", "h", &[]);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        c.inc();
                        h.record(Duration::from_nanos(i % 1024));
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per_thread);
        let snap = h.snapshot();
        assert_eq!(snap.count(), threads * per_thread);
        // Serial ground truth for the same observation stream.
        let mut serial = LatencyHistogram::new();
        for _ in 0..threads {
            for i in 0..per_thread {
                serial.record(Duration::from_nanos(i % 1024));
            }
        }
        assert_eq!(snap, serial);
    }
}
