//! The power-of-two latency histogram, promoted here from
//! `islabel-serve` so every layer (shard workers, the network server,
//! exposition) shares one implementation. PR 10 adds a running
//! nanosecond sum so the Prometheus `_sum` series is exact rather than
//! bucket-approximated.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets in a [`LatencyHistogram`]: bucket `i` counts
/// latencies in `[2^i, 2^{i+1})` nanoseconds, so 40 buckets span 1 ns to
/// ~18 minutes — any conceivable query service time.
pub const LATENCY_BUCKETS: usize = 40;

/// Lock-free recorder behind [`LatencyHistogram`]: one relaxed atomic
/// bucket increment plus one relaxed sum add per observation, shared
/// across threads. Used by the shard workers in `islabel-serve` and by
/// the network server in `islabel-net`.
pub struct AtomicLatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    sum_nanos: AtomicU64,
}

impl Default for AtomicLatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicLatencyHistogram {
    /// An empty recorder.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// Records one observation (a relaxed increment of one bucket plus
    /// the running sum).
    pub fn record(&self, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        // ordering: Relaxed — independent bucket counters; histogram
        // reads tolerate tearing across buckets by design.
        self.buckets[bucket_index(elapsed)].fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — same counter discipline; the sum may tear
        // against the buckets in a snapshot, which exposition tolerates.
        self.sum_nanos.fetch_add(ns, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counts.
    pub fn snapshot(&self) -> LatencyHistogram {
        LatencyHistogram {
            // ordering: Relaxed — same bucket-counter discipline.
            counts: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            // ordering: Relaxed — same counter discipline.
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for AtomicLatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

#[inline]
fn bucket_index(elapsed: Duration) -> usize {
    let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
    // floor(log2(ns)); `| 1` makes 0 ns land in bucket 0.
    let idx = (63 - (ns | 1).leading_zeros()) as usize;
    idx.min(LATENCY_BUCKETS - 1)
}

/// A fixed-bucket (power-of-two) latency histogram: cheap to record
/// (one increment), cheap to merge, and accurate enough for serving
/// percentiles — [`percentile`](LatencyHistogram::percentile) reports the
/// upper edge of the bucket the quantile falls in, i.e. within 2x of the
/// true value, conservatively rounded up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; LATENCY_BUCKETS],
    sum_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: [0; LATENCY_BUCKETS],
            sum_nanos: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassembles a histogram from raw parts (the wire `Stats` payload
    /// carries the buckets and sum verbatim).
    pub fn from_parts(counts: [u64; LATENCY_BUCKETS], sum_nanos: u64) -> Self {
        Self { counts, sum_nanos }
    }

    /// Records one observation (single-threaded variant; serving layers
    /// share an [`AtomicLatencyHistogram`] instead).
    pub fn record(&mut self, elapsed: Duration) {
        self.counts[bucket_index(elapsed)] += 1;
        self.sum_nanos += elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Exact sum of all recorded observations, in nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos
    }

    /// Adds another histogram's counts (and sum) into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum_nanos += other.sum_nanos;
    }

    /// The raw bucket counts; bucket `i` covers `[2^i, 2^{i+1})` ns.
    pub fn buckets(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.counts
    }

    /// The latency at quantile `q` in `[0, 1]`: the upper edge of the
    /// first bucket whose cumulative count reaches `q` of the total.
    /// [`Duration::ZERO`] when nothing has been recorded.
    pub fn percentile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_nanos(1u64 << (i + 1).min(63));
            }
        }
        Duration::from_nanos(1u64 << LATENCY_BUCKETS.min(63))
    }

    /// Median observed latency (histogram upper bound).
    pub fn p50(&self) -> Duration {
        self.percentile(0.50)
    }

    /// 99th-percentile observed latency (histogram upper bound).
    pub fn p99(&self) -> Duration {
        self.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_tracks_observations_through_merge_and_snapshot() {
        let atomic = AtomicLatencyHistogram::new();
        atomic.record(Duration::from_nanos(100));
        atomic.record(Duration::from_nanos(300));
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.sum_nanos(), 400);

        let mut local = LatencyHistogram::new();
        local.record(Duration::from_nanos(50));
        local.merge(&snap);
        assert_eq!(local.count(), 3);
        assert_eq!(local.sum_nanos(), 450);

        let rebuilt = LatencyHistogram::from_parts(*local.buckets(), local.sum_nanos());
        assert_eq!(rebuilt, local);
    }
}
