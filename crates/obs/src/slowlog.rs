//! The slow-query ring log: a fixed-capacity buffer of the most recent
//! queries whose total service time crossed a runtime-settable
//! threshold. Entries carry the full phase breakdown the paper's
//! experiments report per query — Equation-1 intersect time, seed
//! translation, dense `G_k` search, settled vertices — plus the kernel
//! tier and snapshot generation that answered, so one log line is enough
//! to attribute an outlier.
//!
//! The threshold defaults to 0 = disabled: the hot path then pays one
//! relaxed atomic load per query and nothing else.

use crate::metric::Counter;
use crate::names::METRIC_SLOW_QUERIES_TOTAL;
use crate::registry::Registry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One logged slow query. `seq` is assigned by the log (monotonic since
/// process start), everything else by the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// Monotonic sequence number assigned at
    /// [`observe`](SlowQueryLog::observe) time.
    pub seq: u64,
    /// Query source vertex.
    pub src: u32,
    /// Query target vertex.
    pub dst: u32,
    /// Answered distance (`None` = unreachable or errored).
    pub dist: Option<u64>,
    /// Total service time.
    pub total_ns: u64,
    /// Equation-1 label-intersection phase.
    pub intersect_ns: u64,
    /// Seed fetch/translation phase.
    pub seed_ns: u64,
    /// Dense `G_k` bidirectional search phase.
    pub search_ns: u64,
    /// Vertices settled by the dense search.
    pub settled: u64,
    /// Kernel dispatch tier that ran Equation 1 (e.g. `avx2`).
    pub kernel_tier: &'static str,
    /// Snapshot generation (hot-swap version) that answered.
    pub snapshot_generation: u64,
}

struct Ring {
    entries: Vec<SlowQuery>,
    /// Index the next entry overwrites once the ring is full.
    next: usize,
    seq: u64,
}

/// Threshold-gated ring buffer of recent slow queries. See the
/// [module docs](self).
pub struct SlowQueryLog {
    threshold_ns: AtomicU64,
    capacity: usize,
    ring: Mutex<Ring>,
    logged: Arc<Counter>,
}

impl std::fmt::Debug for SlowQueryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowQueryLog")
            .field("threshold_ns", &self.threshold_ns())
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

/// Default capacity of [`SlowQueryLog::global`].
pub const DEFAULT_SLOWLOG_CAPACITY: usize = 128;

impl SlowQueryLog {
    /// A disabled log (threshold 0) holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self::with_registry(capacity, Registry::global())
    }

    /// [`new`](Self::new) counting into a private registry (tests).
    pub fn with_registry(capacity: usize, registry: &Registry) -> Self {
        Self {
            threshold_ns: AtomicU64::new(0),
            capacity: capacity.max(1),
            ring: Mutex::new(Ring {
                entries: Vec::new(),
                next: 0,
                seq: 0,
            }),
            logged: registry.counter(
                METRIC_SLOW_QUERIES_TOTAL,
                "Queries that crossed the slow-query threshold.",
                &[],
            ),
        }
    }

    /// The process-wide log the serving layers feed and the `Metrics`
    /// exposition appends.
    pub fn global() -> &'static SlowQueryLog {
        static GLOBAL: OnceLock<SlowQueryLog> = OnceLock::new();
        GLOBAL.get_or_init(|| SlowQueryLog::new(DEFAULT_SLOWLOG_CAPACITY))
    }

    /// Sets the logging threshold; 0 disables the log.
    pub fn set_threshold_ns(&self, ns: u64) {
        // ordering: Relaxed — a runtime knob read per query; no memory
        // is published through it.
        self.threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Current threshold in nanoseconds (0 = disabled).
    pub fn threshold_ns(&self) -> u64 {
        // ordering: Relaxed — same knob discipline as the store.
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Logs `q` if its `total_ns` crosses the threshold (`seq` is
    /// overwritten with the log's own sequence). A no-op while disabled
    /// — one relaxed load and out.
    pub fn observe(&self, mut q: SlowQuery) {
        let threshold = self.threshold_ns();
        if threshold == 0 || q.total_ns < threshold {
            return;
        }
        self.logged.inc();
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.seq += 1;
        q.seq = ring.seq;
        if ring.entries.len() < self.capacity {
            ring.entries.push(q);
        } else {
            let at = ring.next;
            ring.entries[at] = q;
        }
        ring.next = (ring.next + 1) % self.capacity;
    }

    /// Queries logged since process start (survives ring wraparound).
    pub fn total_logged(&self) -> u64 {
        self.logged.get()
    }

    /// A snapshot of the retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(ring.entries.len());
        if ring.entries.len() == self.capacity {
            out.extend_from_slice(&ring.entries[ring.next..]);
            out.extend_from_slice(&ring.entries[..ring.next]);
        } else {
            out.extend_from_slice(&ring.entries);
        }
        out
    }

    /// Appends the retained entries as `#`-comment lines (scrapers
    /// ignore comments, humans reading the exposition get the log for
    /// free).
    pub fn render_into(&self, out: &mut String) {
        for e in self.entries() {
            out.push_str(&format!(
                "# slow_query seq={} src={} dst={} dist={} total_ns={} intersect_ns={} seed_ns={} search_ns={} settled={} kernel={} snapshot={}\n",
                e.seq,
                e.src,
                e.dst,
                e.dist.map_or_else(|| "unreachable".to_string(), |d| d.to_string()),
                e.total_ns,
                e.intersect_ns,
                e.seed_ns,
                e.search_ns,
                e.settled,
                e.kernel_tier,
                e.snapshot_generation,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(total_ns: u64, src: u32) -> SlowQuery {
        SlowQuery {
            seq: 0,
            src,
            dst: src + 1,
            dist: Some(u64::from(src) * 2),
            total_ns,
            intersect_ns: 1,
            seed_ns: 2,
            search_ns: total_ns.saturating_sub(3),
            settled: 10,
            kernel_tier: "scalar",
            snapshot_generation: 7,
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let r = Registry::new();
        let log = SlowQueryLog::with_registry(4, &r);
        log.observe(q(1_000_000, 1));
        assert!(log.entries().is_empty());
        assert_eq!(log.total_logged(), 0);
    }

    #[test]
    fn threshold_gates_and_ring_wraps_oldest_first() {
        let r = Registry::new();
        let log = SlowQueryLog::with_registry(3, &r);
        log.set_threshold_ns(100);
        log.observe(q(99, 0)); // below threshold: dropped
        for i in 1..=5u32 {
            log.observe(q(100 + u64::from(i), i));
        }
        assert_eq!(log.total_logged(), 5);
        let entries = log.entries();
        // Capacity 3: entries 1 and 2 were overwritten by 4 and 5.
        assert_eq!(entries.len(), 3);
        assert_eq!(
            entries.iter().map(|e| e.src).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        // seq is monotonic and oldest-first.
        assert!(entries.windows(2).all(|w| w[0].seq < w[1].seq));

        let mut text = String::new();
        log.render_into(&mut text);
        assert_eq!(text.lines().count(), 3);
        assert!(
            text.contains("# slow_query seq=5 src=5 dst=6 dist=10"),
            "{text}"
        );
        assert!(text.contains("kernel=scalar snapshot=7"), "{text}");
    }
}
