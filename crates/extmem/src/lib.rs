#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # islabel-extmem
//!
//! External-memory substrate for the IS-LABEL reproduction.
//!
//! Section 6 of the paper designs I/O-efficient index-construction
//! algorithms in the scan/sort model of Aggarwal–Vitter:
//! `scan(N) = Θ(N/B)` and `sort(N) = Θ((N/B) log_{M/B}(N/B))`, where `M` is
//! main-memory size and `B` the disk block size. This crate supplies the
//! machinery those algorithms run on:
//!
//! * [`storage`] — a named byte-stream store with two backends (in-memory
//!   for deterministic tests, directory-backed for real disk runs), every
//!   byte accounted.
//! * [`iostats`] — shared I/O counters plus the block/latency cost model
//!   used to report modeled I/O time the way the paper attributes ~10 ms to
//!   each label fetch.
//! * [`extsort`] — external merge sort (run generation under a memory
//!   budget, k-way merge) over length-delimited records.
//! * [`diskgraph`] — an adjacency-list graph file scanned strictly
//!   sequentially, the on-disk input/output format of Algorithms 2 and 3.

pub mod diskgraph;
pub mod extsort;
pub mod iostats;
pub mod storage;

pub use diskgraph::{AdjRecord, DiskGraph};
pub use extsort::{external_sort, ExtRecord, RecordReader, RecordWriter};
pub use iostats::{IoCostModel, IoSnapshot, IoStats};
pub use storage::{DirStorage, MemStorage, Storage, StorageHandle};
