//! External merge sort over length-delimited records.
//!
//! This is the paper's `sort(N)` primitive: Algorithm 2 sorts adjacency
//! lists by degree, Algorithm 3 sorts the augmenting-edge array `EA` by
//! vertex ids. Both operate on datasets assumed not to fit in memory, so the
//! sort runs in the classic two-phase shape:
//!
//! 1. **Run generation** — buffer records up to a memory budget, sort
//!    in-memory, emit a sorted run file.
//! 2. **K-way merge** — merge runs with a loser-heap, possibly in multiple
//!    passes when the run count exceeds the configured fan-in (that is what
//!    gives the `log_{M/B}` factor in the I/O bound).
//!
//! Records implement [`ExtRecord`]: a binary encoding plus a sort key.
//! Ties are broken by run order, and run generation is stable, so the sort
//! is deterministic for any input order — a property the IM/EM equivalence
//! tests rely on.

use crate::storage::Storage;
use bytes::{Buf, BufMut};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{self, Read, Write};

/// A record that can be externally sorted.
pub trait ExtRecord: Sized + Clone {
    /// Total order used by the sort. Include a unique component (e.g. vertex
    /// id) if a deterministic output order matters.
    type Key: Ord + Clone;

    /// The sort key of this record.
    fn key(&self) -> Self::Key;

    /// Appends the binary encoding to `out` (no length prefix; the framing
    /// layer adds one).
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one record from exactly the bytes produced by [`encode`].
    ///
    /// [`encode`]: ExtRecord::encode
    fn decode(buf: &[u8]) -> Self;

    /// Approximate in-memory footprint, used for the run-generation budget.
    fn approx_size(&self) -> usize;
}

/// Writes length-prefixed records to a byte sink.
pub struct RecordWriter<W: Write> {
    sink: W,
    scratch: Vec<u8>,
}

impl<W: Write> std::fmt::Debug for RecordWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordWriter").finish_non_exhaustive()
    }
}

impl<W: Write> RecordWriter<W> {
    /// Wraps a sink.
    pub fn new(sink: W) -> Self {
        Self {
            sink,
            scratch: Vec::with_capacity(256),
        }
    }

    /// Appends one record.
    pub fn write<T: ExtRecord>(&mut self, record: &T) -> io::Result<()> {
        self.scratch.clear();
        record.encode(&mut self.scratch);
        let mut len = [0u8; 4];
        (&mut len[..]).put_u32_le(self.scratch.len() as u32);
        self.sink.write_all(&len)?;
        self.sink.write_all(&self.scratch)
    }

    /// Flushes and returns the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Reads length-prefixed records from a byte source.
pub struct RecordReader<R: Read> {
    source: R,
    scratch: Vec<u8>,
}

impl<R: Read> std::fmt::Debug for RecordReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordReader").finish_non_exhaustive()
    }
}

impl<R: Read> RecordReader<R> {
    /// Wraps a source.
    pub fn new(source: R) -> Self {
        Self {
            source,
            scratch: Vec::with_capacity(256),
        }
    }

    /// Reads the next record, or `None` at clean end-of-stream.
    ///
    /// Deliberately named like `Iterator::next`: this is a fallible cursor
    /// (`io::Result<Option<T>>`), which `Iterator` cannot express directly.
    #[allow(clippy::should_implement_trait)]
    pub fn next<T: ExtRecord>(&mut self) -> io::Result<Option<T>> {
        let mut len = [0u8; 4];
        match self.source.read_exact(&mut len) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let n = (&len[..]).get_u32_le() as usize;
        self.scratch.resize(n, 0);
        self.source.read_exact(&mut self.scratch)?;
        Ok(Some(T::decode(&self.scratch)))
    }

    /// Drains the remaining records into a vector (test/diagnostic helper).
    pub fn collect<T: ExtRecord>(&mut self) -> io::Result<Vec<T>> {
        let mut out = Vec::new();
        while let Some(r) = self.next()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// Configuration for [`external_sort`].
#[derive(Debug, Clone, Copy)]
pub struct SortConfig {
    /// Memory budget for run generation, in bytes (the paper's `M`).
    pub memory_budget: usize,
    /// Maximum runs merged per pass (the paper's `M/B` fan-in).
    pub fan_in: usize,
}

impl Default for SortConfig {
    fn default() -> Self {
        Self {
            memory_budget: 64 * 1024 * 1024,
            fan_in: 16,
        }
    }
}

/// Externally sorts `input` into the storage object `out_name`.
///
/// Temporary run files are created under `{out_name}.runN` and deleted
/// before returning. Returns the number of records written.
pub fn external_sort<T: ExtRecord>(
    storage: &dyn Storage,
    input: impl IntoIterator<Item = T>,
    out_name: &str,
    config: SortConfig,
) -> io::Result<u64> {
    assert!(config.fan_in >= 2, "fan-in must be at least 2");
    // Phase 1: run generation.
    let mut runs: Vec<String> = Vec::new();
    let mut buffer: Vec<T> = Vec::new();
    let mut buffered_bytes = 0usize;
    let mut total = 0u64;
    let flush = |buffer: &mut Vec<T>, runs: &mut Vec<String>| -> io::Result<()> {
        if buffer.is_empty() {
            return Ok(());
        }
        // Stable sort keeps equal-key records in arrival order.
        buffer.sort_by_key(|r| r.key());
        let name = format!("{out_name}.run{}", runs.len());
        let mut w = RecordWriter::new(storage.create(&name)?);
        for r in buffer.iter() {
            w.write(r)?;
        }
        w.finish()?;
        runs.push(name);
        buffer.clear();
        Ok(())
    };

    for record in input {
        buffered_bytes += record.approx_size() + 16;
        total += 1;
        buffer.push(record);
        if buffered_bytes >= config.memory_budget {
            flush(&mut buffer, &mut runs)?;
            buffered_bytes = 0;
        }
    }
    flush(&mut buffer, &mut runs)?;

    if runs.is_empty() {
        // Empty input: still produce an (empty) output object.
        let w = RecordWriter::new(storage.create(out_name)?);
        w.finish()?;
        return Ok(0);
    }

    // Phase 2: merge passes until one file remains.
    let mut generation = 0usize;
    while runs.len() > 1 {
        let mut next_runs = Vec::new();
        for (chunk_idx, chunk) in runs.chunks(config.fan_in).enumerate() {
            let name = if runs.len() <= config.fan_in {
                out_name.to_string()
            } else {
                format!("{out_name}.m{generation}.{chunk_idx}")
            };
            merge_runs::<T>(storage, chunk, &name)?;
            next_runs.push(name);
        }
        for r in &runs {
            storage.delete(r)?;
        }
        runs = next_runs;
        generation += 1;
    }
    if runs[0] != out_name {
        // Single run: rename by copy (storage has no rename primitive; a
        // single-run sort is the in-memory case anyway).
        let mut r = storage.open(&runs[0])?;
        let mut w = storage.create(out_name)?;
        io::copy(&mut r, &mut w)?;
        drop(w);
        storage.delete(&runs[0])?;
    }
    Ok(total)
}

/// Merges already-sorted run files into `out_name` (k-way heap merge).
fn merge_runs<T: ExtRecord>(
    storage: &dyn Storage,
    runs: &[String],
    out_name: &str,
) -> io::Result<()> {
    let mut readers: Vec<RecordReader<Box<dyn Read + Send>>> = runs
        .iter()
        .map(|r| storage.open(r).map(RecordReader::new))
        .collect::<io::Result<_>>()?;

    // Heap of Reverse((key, run_index)); run_index breaks ties first-run-first
    // to preserve the stable order across runs.
    let mut heap: BinaryHeap<Reverse<(T::Key, usize)>> = BinaryHeap::new();
    let mut heads: Vec<Option<T>> = Vec::with_capacity(readers.len());
    for (i, r) in readers.iter_mut().enumerate() {
        let head = r.next::<T>()?;
        if let Some(ref rec) = head {
            heap.push(Reverse((rec.key(), i)));
        }
        heads.push(head);
    }

    let mut w = RecordWriter::new(storage.create(out_name)?);
    while let Some(Reverse((_, i))) = heap.pop() {
        let rec = heads[i].take().expect("head missing for popped run");
        w.write(&rec)?;
        if let Some(next) = readers[i].next::<T>()? {
            heap.push(Reverse((next.key(), i)));
            heads[i] = Some(next);
        }
    }
    w.finish()?;
    Ok(())
}

// Convenience impls for the small tuple records the algorithms use.

impl ExtRecord for (u32, u32) {
    type Key = (u32, u32);

    fn key(&self) -> Self::Key {
        *self
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.put_u32_le(self.0);
        out.put_u32_le(self.1);
    }

    fn decode(mut buf: &[u8]) -> Self {
        (buf.get_u32_le(), buf.get_u32_le())
    }

    fn approx_size(&self) -> usize {
        8
    }
}

impl ExtRecord for (u32, u32, u32, u32) {
    type Key = (u32, u32, u32, u32);

    fn key(&self) -> Self::Key {
        *self
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.put_u32_le(self.0);
        out.put_u32_le(self.1);
        out.put_u32_le(self.2);
        out.put_u32_le(self.3);
    }

    fn decode(mut buf: &[u8]) -> Self {
        (
            buf.get_u32_le(),
            buf.get_u32_le(),
            buf.get_u32_le(),
            buf.get_u32_le(),
        )
    }

    fn approx_size(&self) -> usize {
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn sort_pairs(pairs: Vec<(u32, u32)>, config: SortConfig) -> Vec<(u32, u32)> {
        let storage = MemStorage::new();
        let n = external_sort(&storage, pairs, "out", config).unwrap();
        let mut reader = RecordReader::new(storage.open("out").unwrap());
        let result: Vec<(u32, u32)> = reader.collect().unwrap();
        assert_eq!(result.len() as u64, n);
        // All temporaries cleaned up.
        assert_eq!(storage.names(), vec!["out"]);
        result
    }

    #[test]
    fn sorts_in_single_run() {
        let out = sort_pairs(vec![(3, 0), (1, 0), (2, 0)], SortConfig::default());
        assert_eq!(out, vec![(1, 0), (2, 0), (3, 0)]);
    }

    #[test]
    fn sorts_across_many_tiny_runs() {
        // Budget of ~2 records per run forces many runs and multiple merge
        // passes with fan_in 2.
        let config = SortConfig {
            memory_budget: 48,
            fan_in: 2,
        };
        let input: Vec<(u32, u32)> = (0..200u32).rev().map(|i| (i, i * 10)).collect();
        let out = sort_pairs(input, config);
        assert_eq!(out.len(), 200);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(out[0], (0, 0));
        assert_eq!(out[199], (199, 1990));
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let out = sort_pairs(vec![], SortConfig::default());
        assert!(out.is_empty());
    }

    #[test]
    fn duplicate_keys_preserved() {
        let out = sort_pairs(
            vec![(5, 1), (5, 2), (1, 9), (5, 3)],
            SortConfig {
                memory_budget: 48,
                fan_in: 2,
            },
        );
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], (1, 9));
        // All three (5, _) records survive.
        assert_eq!(out.iter().filter(|r| r.0 == 5).count(), 3);
    }

    #[test]
    fn matches_std_sort_on_random_input() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let input: Vec<(u32, u32)> = (0..5000)
            .map(|_| (rng.gen_range(0..100), rng.gen()))
            .collect();
        let mut expected = input.clone();
        expected.sort();
        let got = sort_pairs(
            input,
            SortConfig {
                memory_budget: 1024,
                fan_in: 3,
            },
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn record_framing_roundtrip() {
        let mut buf = Vec::new();
        {
            let mut w = RecordWriter::new(&mut buf);
            w.write(&(7u32, 8u32, 9u32, 10u32)).unwrap();
            w.write(&(1u32, 2u32, 3u32, 4u32)).unwrap();
            w.finish().unwrap();
        }
        let mut r = RecordReader::new(&buf[..]);
        assert_eq!(
            r.next::<(u32, u32, u32, u32)>().unwrap(),
            Some((7, 8, 9, 10))
        );
        assert_eq!(
            r.next::<(u32, u32, u32, u32)>().unwrap(),
            Some((1, 2, 3, 4))
        );
        assert_eq!(r.next::<(u32, u32, u32, u32)>().unwrap(), None);
    }

    #[test]
    fn io_is_counted() {
        let storage = MemStorage::new();
        let input: Vec<(u32, u32)> = (0..100u32).map(|i| (100 - i, 0)).collect();
        external_sort(
            &storage,
            input,
            "out",
            SortConfig {
                memory_budget: 128,
                fan_in: 2,
            },
        )
        .unwrap();
        let snap = storage.stats().snapshot();
        // Multiple passes => bytes written well beyond one copy of the data.
        assert!(
            snap.bytes_written > 1200,
            "bytes written {}",
            snap.bytes_written
        );
        assert!(snap.bytes_read > 0);
    }
}
