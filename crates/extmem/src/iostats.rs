//! I/O accounting and the block cost model.
//!
//! All storage traffic in this crate flows through an [`IoStats`] instance,
//! so experiments can report *counted* I/O independent of the machine they
//! run on. The paper reports query label-retrieval time as essentially one
//! 10 ms disk seek per label (Section 7.2, "the speed of our hard disk, with
//! a benchmark of 10ms per disk I/O"); [`IoCostModel`] turns our counters
//! into that same accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Shared, thread-safe I/O counters (bytes and operations, split by
/// direction, plus random seeks counted separately from sequential bytes).
#[derive(Debug, Default)]
pub struct IoStats {
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    read_ops: AtomicU64,
    write_ops: AtomicU64,
    seeks: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Number of read calls.
    pub read_ops: u64,
    /// Number of write calls.
    pub write_ops: u64,
    /// Number of random-access repositionings (e.g. one per label fetch).
    pub seeks: u64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sequential read of `bytes`.
    pub fn record_read(&self, bytes: u64) {
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.read_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a sequential write of `bytes`.
    pub fn record_write(&self, bytes: u64) {
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.write_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one random repositioning (a disk seek in the cost model).
    pub fn record_seek(&self) {
        self.seeks.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            read_ops: self.read_ops.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.read_ops.store(0, Ordering::Relaxed);
        self.write_ops.store(0, Ordering::Relaxed);
        self.seeks.store(0, Ordering::Relaxed);
    }
}

impl IoSnapshot {
    /// Counter-wise difference `self - earlier` (for measuring an interval).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            read_ops: self.read_ops - earlier.read_ops,
            write_ops: self.write_ops - earlier.write_ops,
            seeks: self.seeks - earlier.seeks,
        }
    }

    /// Total transferred bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// Converts counted I/O into the paper's block-level accounting and into
/// modeled wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoCostModel {
    /// Disk block size `B` in bytes.
    pub block_size: u64,
    /// Latency charged per random seek (the paper's ~10 ms).
    pub seek_latency: Duration,
    /// Sequential throughput in bytes/second (7200 RPM SATA ≈ 100 MB/s).
    pub sequential_bytes_per_sec: u64,
}

impl Default for IoCostModel {
    fn default() -> Self {
        Self {
            block_size: 64 * 1024,
            seek_latency: Duration::from_millis(10),
            sequential_bytes_per_sec: 100 * 1024 * 1024,
        }
    }
}

impl IoCostModel {
    /// The paper's `scan(N)`: blocks touched by a sequential pass over `N`
    /// bytes.
    pub fn scan_blocks(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.block_size)
    }

    /// Modeled time for a snapshot: seeks at seek latency plus sequential
    /// transfer at the configured throughput.
    pub fn modeled_time(&self, snap: &IoSnapshot) -> Duration {
        let seek = self.seek_latency * snap.seeks as u32;
        let transfer = Duration::from_secs_f64(
            snap.total_bytes() as f64 / self.sequential_bytes_per_sec as f64,
        );
        seek + transfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_read(100);
        s.record_read(50);
        s.record_write(10);
        s.record_seek();
        let snap = s.snapshot();
        assert_eq!(snap.bytes_read, 150);
        assert_eq!(snap.read_ops, 2);
        assert_eq!(snap.bytes_written, 10);
        assert_eq!(snap.write_ops, 1);
        assert_eq!(snap.seeks, 1);
        assert_eq!(snap.total_bytes(), 160);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.record_read(5);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let s = IoStats::new();
        s.record_read(5);
        let a = s.snapshot();
        s.record_read(7);
        s.record_seek();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.bytes_read, 7);
        assert_eq!(d.seeks, 1);
    }

    #[test]
    fn cost_model_scan_blocks() {
        let m = IoCostModel {
            block_size: 10,
            ..Default::default()
        };
        assert_eq!(m.scan_blocks(0), 0);
        assert_eq!(m.scan_blocks(1), 1);
        assert_eq!(m.scan_blocks(10), 1);
        assert_eq!(m.scan_blocks(11), 2);
    }

    #[test]
    fn cost_model_time_includes_seeks_and_transfer() {
        let m = IoCostModel {
            block_size: 1024,
            seek_latency: Duration::from_millis(10),
            sequential_bytes_per_sec: 1000,
        };
        let snap = IoSnapshot {
            bytes_read: 500,
            seeks: 2,
            ..Default::default()
        };
        let t = m.modeled_time(&snap);
        // 2 seeks (20ms) + 500 bytes at 1000 B/s (500ms).
        assert_eq!(t, Duration::from_millis(520));
    }
}
