//! Named byte-stream storage with full I/O accounting.
//!
//! The external-memory algorithms only ever touch storage three ways:
//! sequential writes (creating a file), sequential scans (reading a file
//! front to back), and positioned reads (fetching one vertex label). The
//! [`Storage`] trait captures exactly those operations, and both backends
//! route every byte through a shared [`IoStats`]:
//!
//! * [`MemStorage`] — files live in memory; used by tests and by benchmarks
//!   that want counted-I/O determinism without disk noise.
//! * [`DirStorage`] — files live in a directory on the real filesystem.

use crate::iostats::IoStats;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

/// Shared handle to a storage backend.
pub type StorageHandle = Arc<dyn Storage>;

/// A named byte-stream store. Names are flat (no directories).
pub trait Storage: Send + Sync {
    /// Creates (or truncates) `name` and returns a sequential writer. The
    /// file becomes visible to readers when the writer is dropped.
    fn create(&self, name: &str) -> io::Result<Box<dyn Write + Send>>;

    /// Opens `name` for a sequential scan from the start.
    fn open(&self, name: &str) -> io::Result<Box<dyn Read + Send>>;

    /// Reads exactly `buf.len()` bytes at `offset`, charging one seek.
    fn read_at(&self, name: &str, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Deletes `name` (idempotent).
    fn delete(&self, name: &str) -> io::Result<()>;

    /// Whether `name` exists.
    fn exists(&self, name: &str) -> bool;

    /// Size of `name` in bytes.
    fn len(&self, name: &str) -> io::Result<u64>;

    /// The I/O counters shared by all streams of this storage.
    fn stats(&self) -> Arc<IoStats>;
}

fn not_found(name: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("no such storage object: {name}"),
    )
}

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

/// In-memory storage backend.
#[derive(Default)]
pub struct MemStorage {
    files: Arc<RwLock<HashMap<String, Arc<Vec<u8>>>>>,
    stats: Arc<IoStats>,
}

impl std::fmt::Debug for MemStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemStorage").finish_non_exhaustive()
    }
}

impl MemStorage {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store wrapped in a [`StorageHandle`].
    pub fn handle() -> StorageHandle {
        Arc::new(Self::new())
    }

    /// Names currently stored (sorted; for tests/diagnostics).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.files.read().keys().cloned().collect();
        v.sort();
        v
    }
}

struct MemWriter {
    name: String,
    buf: Vec<u8>,
    files: Arc<RwLock<HashMap<String, Arc<Vec<u8>>>>>,
    stats: Arc<IoStats>,
}

impl Write for MemWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.stats.record_write(data.len() as u64);
        self.buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for MemWriter {
    fn drop(&mut self) {
        let data = std::mem::take(&mut self.buf);
        self.files
            .write()
            .insert(std::mem::take(&mut self.name), Arc::new(data));
    }
}

struct MemReader {
    data: Arc<Vec<u8>>,
    pos: usize,
    stats: Arc<IoStats>,
}

impl Read for MemReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        if n > 0 {
            self.stats.record_read(n as u64);
        }
        Ok(n)
    }
}

impl Storage for MemStorage {
    fn create(&self, name: &str) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(MemWriter {
            name: name.to_string(),
            buf: Vec::new(),
            files: Arc::clone(&self.files),
            stats: Arc::clone(&self.stats),
        }))
    }

    fn open(&self, name: &str) -> io::Result<Box<dyn Read + Send>> {
        let data = self
            .files
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| not_found(name))?;
        Ok(Box::new(MemReader {
            data,
            pos: 0,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn read_at(&self, name: &str, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let data = self
            .files
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| not_found(name))?;
        let start = offset as usize;
        let end = start + buf.len();
        if end > data.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("read_at past end of {name}: {end} > {}", data.len()),
            ));
        }
        buf.copy_from_slice(&data[start..end]);
        self.stats.record_seek();
        self.stats.record_read(buf.len() as u64);
        Ok(())
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        self.files.write().remove(name);
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.files.read().contains_key(name)
    }

    fn len(&self, name: &str) -> io::Result<u64> {
        self.files
            .read()
            .get(name)
            .map(|d| d.len() as u64)
            .ok_or_else(|| not_found(name))
    }

    fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }
}

// ---------------------------------------------------------------------------
// Directory backend
// ---------------------------------------------------------------------------

/// Filesystem-backed storage rooted at a directory.
pub struct DirStorage {
    root: PathBuf,
    stats: Arc<IoStats>,
}

impl std::fmt::Debug for DirStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirStorage")
            .field("root", &self.root)
            .finish_non_exhaustive()
    }
}

impl DirStorage {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            stats: Arc::new(IoStats::new()),
        })
    }

    /// Creates a store wrapped in a [`StorageHandle`].
    pub fn handle(root: impl Into<PathBuf>) -> io::Result<StorageHandle> {
        Ok(Arc::new(Self::new(root)?))
    }

    fn path(&self, name: &str) -> PathBuf {
        // Flat namespace; reject path traversal outright.
        assert!(
            !name.contains('/') && !name.contains('\\') && name != "." && name != "..",
            "storage names must be flat: {name}"
        );
        self.root.join(name)
    }
}

struct CountingWriter<W: Write> {
    inner: W,
    stats: Arc<IoStats>,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(data)?;
        self.stats.record_write(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

struct CountingReader<R: Read> {
    inner: R,
    stats: Arc<IoStats>,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        if n > 0 {
            self.stats.record_read(n as u64);
        }
        Ok(n)
    }
}

impl Storage for DirStorage {
    fn create(&self, name: &str) -> io::Result<Box<dyn Write + Send>> {
        let f = std::fs::File::create(self.path(name))?;
        Ok(Box::new(CountingWriter {
            inner: io::BufWriter::new(f),
            stats: Arc::clone(&self.stats),
        }))
    }

    fn open(&self, name: &str) -> io::Result<Box<dyn Read + Send>> {
        let f = std::fs::File::open(self.path(name))?;
        Ok(Box::new(CountingReader {
            inner: io::BufReader::new(f),
            stats: Arc::clone(&self.stats),
        }))
    }

    fn read_at(&self, name: &str, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let mut f = std::fs::File::open(self.path(name))?;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)?;
        self.stats.record_seek();
        self.stats.record_read(buf.len() as u64);
        Ok(())
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    fn len(&self, name: &str) -> io::Result<u64> {
        Ok(std::fs::metadata(self.path(name))?.len())
    }

    fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(storage: &dyn Storage) {
        // Create, read back, read_at, len, delete.
        {
            let mut w = storage.create("a.bin").unwrap();
            w.write_all(b"hello world").unwrap();
            w.flush().unwrap();
        }
        assert!(storage.exists("a.bin"));
        assert_eq!(storage.len("a.bin").unwrap(), 11);

        let mut r = storage.open("a.bin").unwrap();
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"hello world");

        let mut mid = [0u8; 5];
        storage.read_at("a.bin", 6, &mut mid).unwrap();
        assert_eq!(&mid, b"world");

        let snap = storage.stats().snapshot();
        assert!(snap.bytes_written >= 11);
        assert!(snap.bytes_read >= 16);
        assert_eq!(snap.seeks, 1);

        storage.delete("a.bin").unwrap();
        assert!(!storage.exists("a.bin"));
        assert!(storage.open("a.bin").is_err());
        storage.delete("a.bin").unwrap(); // idempotent
    }

    #[test]
    fn mem_storage_contract() {
        exercise(&MemStorage::new());
    }

    #[test]
    fn dir_storage_contract() {
        let dir = std::env::temp_dir().join(format!("islabel-extmem-test-{}", std::process::id()));
        exercise(&DirStorage::new(&dir).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_read_at_past_end_errors() {
        let s = MemStorage::new();
        {
            let mut w = s.create("x").unwrap();
            w.write_all(b"abc").unwrap();
        }
        let mut buf = [0u8; 4];
        assert!(s.read_at("x", 1, &mut buf).is_err());
    }

    #[test]
    fn overwrite_replaces_content() {
        let s = MemStorage::new();
        {
            let mut w = s.create("x").unwrap();
            w.write_all(b"first").unwrap();
        }
        {
            let mut w = s.create("x").unwrap();
            w.write_all(b"2nd").unwrap();
        }
        assert_eq!(s.len("x").unwrap(), 3);
    }

    #[test]
    #[should_panic(expected = "flat")]
    fn dir_storage_rejects_traversal() {
        let dir = std::env::temp_dir().join(format!("islabel-extmem-trav-{}", std::process::id()));
        let s = DirStorage::new(&dir).unwrap();
        let _ = s.exists("../evil");
    }

    #[test]
    fn names_listed_sorted() {
        let s = MemStorage::new();
        for n in ["c", "a", "b"] {
            let mut w = s.create(n).unwrap();
            w.write_all(b"x").unwrap();
        }
        assert_eq!(s.names(), vec!["a", "b", "c"]);
    }
}
