//! Disk-resident adjacency-list graphs.
//!
//! The paper stores each `G_i` "in its adjacency list representation
//! (whether in memory or on disk), where ... vertices are ordered in
//! ascending order of their vertex IDs" (Section 2), and every
//! external-memory step of Algorithms 2 and 3 is a *sequential* scan or a
//! sort of such files. [`DiskGraph`] is that file format: a stream of
//! [`AdjRecord`]s, one per vertex with at least one edge, ordered by vertex
//! id, with a small sidecar carrying the counts.
//!
//! Each adjacency entry also carries the augmenting-edge `via` annotation
//! (Section 8.1) so that the external build produces the same path metadata
//! as the in-memory build.
//!
//! The `(neighbor, weight, via)` triple layout is shared with the peel
//! adjacency and via sections of the persistent v3 artifact —
//! [`islabel_store::format`] (`crates/store`) is the single source of
//! truth for these at-rest record sizes.

use crate::extsort::{ExtRecord, RecordReader, RecordWriter};
use crate::storage::Storage;
use bytes::{Buf, BufMut};
use islabel_graph::adjacency::NO_VIA;
use islabel_graph::{CsrGraph, VertexId, Weight};
use islabel_store::format::EDGE_TRIPLE_BYTES;
use std::io::{self, Read};

/// One vertex's adjacency list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjRecord {
    /// The vertex this list belongs to.
    pub vertex: VertexId,
    /// `(neighbor, weight, via)` triples sorted by neighbor id; `via` is
    /// [`NO_VIA`] for original edges.
    pub edges: Vec<(VertexId, Weight, VertexId)>,
}

impl AdjRecord {
    /// Degree of the vertex.
    pub fn degree(&self) -> usize {
        self.edges.len()
    }
}

impl ExtRecord for AdjRecord {
    // Sorted by vertex id (the at-rest order of a DiskGraph).
    type Key = VertexId;

    fn key(&self) -> Self::Key {
        self.vertex
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.put_u32_le(self.vertex);
        out.put_u32_le(self.edges.len() as u32);
        for &(n, w, via) in &self.edges {
            out.put_u32_le(n);
            out.put_u32_le(w);
            out.put_u32_le(via);
        }
    }

    fn decode(mut buf: &[u8]) -> Self {
        let vertex = buf.get_u32_le();
        let count = buf.get_u32_le() as usize;
        let mut edges = Vec::with_capacity(count);
        for _ in 0..count {
            edges.push((buf.get_u32_le(), buf.get_u32_le(), buf.get_u32_le()));
        }
        Self { vertex, edges }
    }

    fn approx_size(&self) -> usize {
        8 + self.edges.len() * EDGE_TRIPLE_BYTES + 24
    }
}

/// [`AdjRecord`] ordered by `(degree, vertex)` — the sort order Algorithm 2
/// needs ("sort the adjacency lists in ascending order of the vertex
/// degrees"); the vertex-id component makes the order total, which keeps the
/// greedy independent-set selection deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjByDegree(pub AdjRecord);

impl ExtRecord for AdjByDegree {
    type Key = (u32, VertexId);

    fn key(&self) -> Self::Key {
        (self.0.edges.len() as u32, self.0.vertex)
    }

    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(buf: &[u8]) -> Self {
        Self(AdjRecord::decode(buf))
    }

    fn approx_size(&self) -> usize {
        self.0.approx_size()
    }
}

/// A named adjacency-list graph file plus its counts.
#[derive(Debug, Clone)]
pub struct DiskGraph {
    /// Storage object name holding the records.
    pub name: String,
    /// Vertex-id universe size (ids are `0..universe`).
    pub universe: usize,
    /// Number of vertices present (records in the file).
    pub num_vertices: usize,
    /// Number of undirected edges (each appears in two records).
    pub num_edges: usize,
}

impl DiskGraph {
    /// The paper's `|G| = |V| + |E|`.
    pub fn size(&self) -> usize {
        self.num_vertices + self.num_edges
    }

    /// Writes `records` (which must be ascending by vertex id, each
    /// neighbor list sorted) as graph `name`, and returns the handle.
    pub fn create(
        storage: &dyn Storage,
        name: &str,
        universe: usize,
        records: impl IntoIterator<Item = AdjRecord>,
    ) -> io::Result<Self> {
        let mut w = RecordWriter::new(storage.create(name)?);
        let mut num_vertices = 0usize;
        let mut half_edges = 0usize;
        let mut last: Option<VertexId> = None;
        for rec in records {
            assert!(
                last.is_none_or(|l| l < rec.vertex),
                "records must ascend by vertex id"
            );
            assert!(
                rec.edges.windows(2).all(|e| e[0].0 < e[1].0),
                "neighbors must be sorted"
            );
            last = Some(rec.vertex);
            num_vertices += 1;
            half_edges += rec.edges.len();
            w.write(&rec)?;
        }
        w.finish()?;
        let dg = Self {
            name: name.to_string(),
            universe,
            num_vertices,
            num_edges: half_edges / 2,
        };
        dg.write_meta(storage)?;
        Ok(dg)
    }

    /// Converts an in-memory CSR graph (vertices with edges only).
    pub fn from_csr(storage: &dyn Storage, name: &str, g: &CsrGraph) -> io::Result<Self> {
        let records = g
            .vertices()
            .filter(|&v| g.degree(v) > 0)
            .map(|v| AdjRecord {
                vertex: v,
                edges: g.edges(v).map(|(n, w)| (n, w, NO_VIA)).collect(),
            });
        Self::create(storage, name, g.num_vertices(), records)
    }

    /// Registers an already-written record file as a graph by persisting its
    /// sidecar. The caller guarantees the file holds ascending [`AdjRecord`]s
    /// consistent with the given counts (used by streaming producers that
    /// cannot go through [`DiskGraph::create`]).
    pub fn assemble(
        storage: &dyn Storage,
        name: &str,
        universe: usize,
        num_vertices: usize,
        num_edges: usize,
    ) -> io::Result<Self> {
        let dg = Self {
            name: name.to_string(),
            universe,
            num_vertices,
            num_edges,
        };
        dg.write_meta(storage)?;
        Ok(dg)
    }

    /// Opens an existing graph by reading its sidecar.
    pub fn open(storage: &dyn Storage, name: &str) -> io::Result<Self> {
        let mut r = storage.open(&format!("{name}.meta"))?;
        let mut buf = [0u8; 24];
        r.read_exact(&mut buf)?;
        let mut b = &buf[..];
        Ok(Self {
            name: name.to_string(),
            universe: b.get_u64_le() as usize,
            num_vertices: b.get_u64_le() as usize,
            num_edges: b.get_u64_le() as usize,
        })
    }

    fn write_meta(&self, storage: &dyn Storage) -> io::Result<()> {
        let mut w = storage.create(&format!("{}.meta", self.name))?;
        let mut buf = Vec::with_capacity(24);
        buf.put_u64_le(self.universe as u64);
        buf.put_u64_le(self.num_vertices as u64);
        buf.put_u64_le(self.num_edges as u64);
        w.write_all(&buf)?;
        Ok(())
    }

    /// Sequentially scans the records in ascending vertex-id order.
    pub fn scan<'a>(&self, storage: &'a dyn Storage) -> io::Result<AdjScan<'a>> {
        Ok(AdjScan {
            reader: RecordReader::new(storage.open(&self.name)?),
        })
    }

    /// Deletes the record file and sidecar.
    pub fn delete(&self, storage: &dyn Storage) -> io::Result<()> {
        storage.delete(&self.name)?;
        storage.delete(&format!("{}.meta", self.name))
    }

    /// Materializes into an in-memory CSR graph (drops via annotations).
    pub fn to_csr(&self, storage: &dyn Storage) -> io::Result<CsrGraph> {
        let mut b = islabel_graph::GraphBuilder::new(self.universe);
        b.reserve(self.num_edges);
        let mut scan = self.scan(storage)?;
        while let Some(rec) = scan.next()? {
            for &(n, w, _) in &rec.edges {
                if rec.vertex < n {
                    b.add_edge(rec.vertex, n, w);
                }
            }
        }
        Ok(b.build())
    }
}

/// Streaming cursor over a [`DiskGraph`].
pub struct AdjScan<'a> {
    reader: RecordReader<Box<dyn Read + Send + 'a>>,
}

impl std::fmt::Debug for AdjScan<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdjScan").finish_non_exhaustive()
    }
}

impl AdjScan<'_> {
    /// The next adjacency record, or `None` at end of graph.
    #[allow(clippy::should_implement_trait)] // fallible iterator
    pub fn next(&mut self) -> io::Result<Option<AdjRecord>> {
        self.reader.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use islabel_graph::generators::{erdos_renyi_gnm, WeightModel};
    use islabel_graph::GraphBuilder;

    #[test]
    fn csr_roundtrip() {
        let storage = MemStorage::new();
        let g = erdos_renyi_gnm(100, 300, WeightModel::UniformRange(1, 9), 5);
        let dg = DiskGraph::from_csr(&storage, "g", &g).unwrap();
        assert_eq!(dg.universe, 100);
        assert_eq!(dg.num_edges, 300);
        assert_eq!(dg.to_csr(&storage).unwrap(), g);
    }

    #[test]
    fn open_reads_sidecar() {
        let storage = MemStorage::new();
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 2);
        b.add_edge(3, 4, 7);
        let g = b.build();
        let dg = DiskGraph::from_csr(&storage, "g", &g).unwrap();
        let reopened = DiskGraph::open(&storage, "g").unwrap();
        assert_eq!(reopened.universe, dg.universe);
        assert_eq!(reopened.num_vertices, 4); // only vertices with edges
        assert_eq!(reopened.num_edges, 2);
    }

    #[test]
    fn scan_is_ascending_and_complete() {
        let storage = MemStorage::new();
        let g = erdos_renyi_gnm(50, 120, WeightModel::Unit, 8);
        let dg = DiskGraph::from_csr(&storage, "g", &g).unwrap();
        let mut scan = dg.scan(&storage).unwrap();
        let mut seen = Vec::new();
        let mut half_edges = 0;
        while let Some(rec) = scan.next().unwrap() {
            seen.push(rec.vertex);
            half_edges += rec.edges.len();
        }
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(half_edges, 240);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn create_rejects_unsorted_records() {
        let storage = MemStorage::new();
        let recs = vec![
            AdjRecord {
                vertex: 2,
                edges: vec![(3, 1, NO_VIA)],
            },
            AdjRecord {
                vertex: 1,
                edges: vec![(3, 1, NO_VIA)],
            },
        ];
        DiskGraph::create(&storage, "g", 4, recs).unwrap();
    }

    #[test]
    fn delete_removes_both_objects() {
        let storage = MemStorage::new();
        let g = erdos_renyi_gnm(10, 20, WeightModel::Unit, 0);
        let dg = DiskGraph::from_csr(&storage, "g", &g).unwrap();
        dg.delete(&storage).unwrap();
        assert!(storage.names().is_empty());
    }

    #[test]
    fn degree_order_wrapper_sorts_by_degree() {
        use crate::extsort::{external_sort, SortConfig};
        let storage = MemStorage::new();
        let recs = vec![
            AdjByDegree(AdjRecord {
                vertex: 0,
                edges: vec![(1, 1, NO_VIA), (2, 1, NO_VIA), (3, 1, NO_VIA)],
            }),
            AdjByDegree(AdjRecord {
                vertex: 1,
                edges: vec![(0, 1, NO_VIA)],
            }),
            AdjByDegree(AdjRecord {
                vertex: 2,
                edges: vec![(0, 1, NO_VIA), (3, 1, NO_VIA)],
            }),
        ];
        external_sort(&storage, recs, "sorted", SortConfig::default()).unwrap();
        let mut r = RecordReader::new(storage.open("sorted").unwrap());
        let out: Vec<AdjByDegree> = r.collect().unwrap();
        let degrees: Vec<usize> = out.iter().map(|r| r.0.degree()).collect();
        assert_eq!(degrees, vec![1, 2, 3]);
    }

    #[test]
    fn via_annotations_survive_roundtrip() {
        let storage = MemStorage::new();
        let recs = vec![AdjRecord {
            vertex: 0,
            edges: vec![(1, 5, 7), (2, 3, NO_VIA)],
        }];
        let dg = DiskGraph::create(&storage, "g", 8, recs.clone()).unwrap();
        let mut scan = dg.scan(&storage).unwrap();
        assert_eq!(scan.next().unwrap(), Some(recs[0].clone()));
    }
}
