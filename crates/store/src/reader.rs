//! Validating, zero-copy v3 artifact reader.
//!
//! [`StoreReader::open`] maps the file and runs the full validate-on-open
//! pass — magic, version, header checksum, every section's offset /
//! length / alignment / checksum — before returning.
//! [`StoreReader::open_unverified`] runs everything except the content
//! checksums (the one O(file) scan), for callers that semantically
//! validate every section themselves; [`StoreReader::verify`] runs that
//! scan on demand. After either open succeeds, the typed accessors
//! ([`section_u32s`](StoreReader::section_u32s),
//! [`section_u64s`](StoreReader::section_u64s)) are pure slice views into
//! the mapping: no copies, no further validation cost, and no way to
//! reach bytes outside the decoded section table. Corrupt input yields a
//! typed `io::Error` (wrapping [`FormatError`]) — never a panic.

use std::io;
use std::path::Path;

use crate::format::{validate_sections, FormatError, Header};
use crate::mmap::{cast_u32s, cast_u64s, MappedFile};

/// An open, fully validated v3 artifact.
#[derive(Debug)]
pub struct StoreReader {
    map: MappedFile,
    header: Header,
}

impl StoreReader {
    /// Opens and validates `path`. Every header field, section offset,
    /// length, alignment, and checksum is verified before this returns;
    /// any violation is a typed error.
    pub fn open(path: &Path) -> io::Result<StoreReader> {
        Self::from_map(MappedFile::open(path)?, true)
    }

    /// Opens `path` with structural validation only: magic, version,
    /// header CRC, and every section's offset / length / alignment are
    /// checked, but section *contents* are not checksummed — that is the
    /// one O(file) scan in `open`, and latency-critical callers that run
    /// their own semantic pass over every section (the mmap query
    /// engine) can defer it. Call [`verify`](Self::verify) to run the
    /// checksum pass later, e.g. when diagnosing a semantic failure.
    pub fn open_unverified(path: &Path) -> io::Result<StoreReader> {
        Self::from_map(MappedFile::open(path)?, false)
    }

    /// Opens an artifact held in memory (the bytes are copied into an
    /// aligned buffer). Same validation as [`open`](Self::open).
    pub fn from_bytes(bytes: Vec<u8>) -> io::Result<StoreReader> {
        Self::from_map(MappedFile::from_vec(bytes), true)
    }

    fn from_map(map: MappedFile, verify_contents: bool) -> io::Result<StoreReader> {
        let registry = islabel_obs::Registry::global();
        registry
            .counter(
                islabel_obs::names::METRIC_STORE_OPENS_TOTAL,
                "Artifact opens by byte source.",
                &[("backing", if map.is_mapped() { "mmap" } else { "heap" })],
            )
            .inc();
        let result: io::Result<Header> = (|| {
            let bytes = map.bytes();
            let header = Header::decode(bytes, bytes.len() as u64).map_err(io::Error::from)?;
            if verify_contents {
                validate_sections(&header, bytes).map_err(io::Error::from)?;
            }
            Ok(header)
        })();
        registry
            .counter(
                islabel_obs::names::METRIC_STORE_VALIDATE_TOTAL,
                "Validate-on-open outcomes.",
                &[("outcome", if result.is_ok() { "ok" } else { "error" })],
            )
            .inc();
        Ok(StoreReader {
            map,
            header: result?,
        })
    }

    /// Verifies every section's content checksum against the table.
    /// A no-op source of truth after [`open`](Self::open) (which already
    /// ran it); the explicit pass for readers that started from
    /// [`open_unverified`](Self::open_unverified).
    pub fn verify(&self) -> io::Result<()> {
        validate_sections(&self.header, self.map.bytes()).map_err(io::Error::from)
    }

    /// The decoded header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Artifact-lineage epoch.
    pub fn epoch(&self) -> u64 {
        self.header.epoch
    }

    /// Total artifact bytes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the artifact is zero bytes (never true after `open`).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether the bytes come from a kernel mapping rather than the heap
    /// fallback.
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// The raw bytes of section `kind`, or `None` if the artifact does
    /// not carry that section.
    pub fn section_bytes(&self, kind: u32) -> Option<&[u8]> {
        let s = self.header.section(kind)?;
        self.map
            .bytes()
            .get(s.offset as usize..(s.offset + s.len) as usize)
    }

    /// Section `kind` viewed in place as little-endian `u32`s. `Err` if
    /// the section length is not a multiple of 4 (or the host cannot view
    /// little-endian data in place), `Ok(None)` if the section is absent.
    pub fn section_u32s(&self, kind: u32) -> io::Result<Option<&[u32]>> {
        match self.section_bytes(kind) {
            None => Ok(None),
            Some(b) => cast_u32s(b).map(Some).ok_or_else(|| {
                io::Error::from(FormatError::Section {
                    kind,
                    reason: "length not a multiple of the element size",
                })
            }),
        }
    }

    /// Section `kind` viewed in place as little-endian `u64`s; same
    /// contract as [`section_u32s`](Self::section_u32s).
    pub fn section_u64s(&self, kind: u32) -> io::Result<Option<&[u64]>> {
        match self.section_bytes(kind) {
            None => Ok(None),
            Some(b) => cast_u64s(b).map(Some).ok_or_else(|| {
                io::Error::from(FormatError::Section {
                    kind,
                    reason: "length not a multiple of the element size",
                })
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{SECTION_LABEL_DISTS, SECTION_LEVELS};
    use crate::writer::{ArtifactMeta, StoreWriter};
    use std::io::Cursor;

    fn tiny_artifact() -> Vec<u8> {
        let meta = ArtifactMeta {
            epoch: 9,
            flags: 0,
            k: 2,
            ksel_tag: 2,
            ksel_bits: 0,
            n: 4,
            dense_m: 1,
            op_count: 0,
        };
        let mut w = StoreWriter::new(Cursor::new(Vec::new()), meta).unwrap();
        w.begin_section(SECTION_LEVELS).unwrap();
        w.write_u32s(&[1, 1, 2, 1]).unwrap();
        w.end_section().unwrap();
        w.begin_section(SECTION_LABEL_DISTS).unwrap();
        w.write_u64s(&[10, 20, 30]).unwrap();
        w.end_section().unwrap();
        w.finish().unwrap().into_inner()
    }

    #[test]
    fn roundtrip_through_reader() {
        let buf = tiny_artifact();
        let r = StoreReader::from_bytes(buf).unwrap();
        assert_eq!(r.epoch(), 9);
        assert_eq!(r.header().n, 4);
        assert_eq!(
            r.section_u32s(SECTION_LEVELS).unwrap(),
            Some(&[1u32, 1, 2, 1][..])
        );
        assert_eq!(
            r.section_u64s(SECTION_LABEL_DISTS).unwrap(),
            Some(&[10u64, 20, 30][..])
        );
        // Absent section.
        assert_eq!(r.section_bytes(crate::format::SECTION_OPS), None);
        assert_eq!(r.section_u32s(crate::format::SECTION_OPS).unwrap(), None);
    }

    #[test]
    fn file_roundtrip_is_mapped() {
        let buf = tiny_artifact();
        let path =
            std::env::temp_dir().join(format!("islabel-store-test-{}.islx", std::process::id()));
        std::fs::write(&path, &buf).unwrap();
        let r = StoreReader::open(&path).unwrap();
        #[cfg(unix)]
        assert!(r.is_mapped());
        assert_eq!(
            r.section_u32s(SECTION_LEVELS).unwrap(),
            Some(&[1u32, 1, 2, 1][..])
        );
        drop(r);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_bytes_yield_typed_errors() {
        let good = tiny_artifact();
        // Flip one byte in a section body: checksum failure.
        let mut bad = good.clone();
        let at = crate::format::DATA_START + 1;
        bad[at] ^= 0xFF;
        let err = StoreReader::from_bytes(bad).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Truncation.
        let err = StoreReader::from_bytes(good[..40].to_vec()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn wrong_element_size_is_an_error_not_a_panic() {
        let meta = ArtifactMeta {
            epoch: 0,
            flags: 0,
            k: 0,
            ksel_tag: 0,
            ksel_bits: 0,
            n: 0,
            dense_m: 0,
            op_count: 0,
        };
        let mut w = StoreWriter::new(Cursor::new(Vec::new()), meta).unwrap();
        w.begin_section(SECTION_LEVELS).unwrap();
        w.write_bytes(&[1, 2, 3]).unwrap(); // 3 bytes: not a u32 array
        w.end_section().unwrap();
        let buf = w.finish().unwrap().into_inner();
        let r = StoreReader::from_bytes(buf).unwrap();
        assert!(r.section_u32s(SECTION_LEVELS).is_err());
    }
}
