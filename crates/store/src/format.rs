//! The v3 `.islx` flat artifact format: constants, header/section-table
//! codec, and the structural validate-on-open checks.
//!
//! A v3 artifact is one file laid out for zero-copy serving:
//!
//! ```text
//! [ header 72 B | section table 16 × 32 B | section | pad | section | … ]
//! ```
//!
//! Every section is a homogeneous little-endian array (`u32` or `u64`
//! elements) or an opaque byte block, starts at an 8-byte-aligned offset,
//! and carries a 64-bit content checksum ([`checksum64`]) over its exact
//! bytes — a multi-lane word-folding checksum chosen so validate-on-open
//! runs at memory speed instead of CRC-table speed. The header carries a
//! CRC-32 over the header + table region (with the checksum field
//! zeroed), so a reader can reject a torn or bit-flipped file before
//! trusting any offset. Section kinds and the format version are
//! wire-frozen: they are registered in `docs/wire_registry.toml` and
//! `islabel-lint` fails the build if any value here is renumbered.
//!
//! This module is a `lint.toml` panic-free zone: decoding works on
//! untrusted bytes, so every access is checked and every failure is a
//! typed [`FormatError`] — never a panic.

use std::io;

/// File magic shared by every `.islx` version.
pub const MAGIC: [u8; 4] = *b"ISLX";

/// The flat, mmap-servable artifact format version. Versions 1 and 2 are
/// the streamed heap-deserialized layouts (see `islabel-core::persist`).
pub const FORMAT_VERSION: u32 = 3;

/// Fixed header bytes before the section table.
pub const HEADER_BYTES: usize = 72;
/// Bytes per section-table entry.
pub const TABLE_ENTRY_BYTES: usize = 32;
/// Section-table slots reserved in every artifact (unused slots are
/// zeroed). Bounding the table keeps the header region fixed-size so the
/// first section offset never moves.
pub const MAX_SECTIONS: usize = 16;
/// Total header + table bytes; the first section starts here (8-aligned).
pub const DATA_START: usize = HEADER_BYTES + MAX_SECTIONS * TABLE_ENTRY_BYTES;

/// Section alignment: every section offset is a multiple of 8 so `u64`
/// arrays can be viewed in place.
pub const SECTION_ALIGN: usize = 8;

// Section kinds. Wire-frozen (see docs/wire_registry.toml): renumbering
// breaks every artifact on disk, so `islabel-lint` diffs these constants
// against the registry.
/// Base graph, CSR binary block (islabel-graph format; opaque bytes).
pub const SECTION_GRAPH: u32 = 1;
/// Hierarchy level numbers, `n × u32`.
pub const SECTION_LEVELS: u32 = 2;
/// Peel adjacency offsets, `(n+1) × u64` (entry indices, not bytes).
pub const SECTION_PEEL_OFFSETS: u32 = 3;
/// Peel adjacency entries, `(to, weight, via)` triples as `3p × u32`.
pub const SECTION_PEEL_EDGES: u32 = 4;
/// Dense `G_k` CSR offsets, `(m+1) × u32`.
pub const SECTION_GK_OFFSETS: u32 = 5;
/// Dense `G_k` CSR targets (compact ids), `me × u32`.
pub const SECTION_GK_TARGETS: u32 = 6;
/// Dense `G_k` CSR weights, `me × u32`.
pub const SECTION_GK_WEIGHTS: u32 = 7;
/// Global→dense id map, `n × u32` (`u32::MAX` = not in `G_k`).
pub const SECTION_GK_DENSE_OF: u32 = 8;
/// Dense→global id map, `m × u32`, strictly ascending.
pub const SECTION_GK_GLOBAL_OF: u32 = 9;
/// `G_k` via annotations, `(u, v, via)` triples as `3c × u32`.
pub const SECTION_GK_VIAS: u32 = 10;
/// Label offsets, `(n+1) × u64` (entry indices).
pub const SECTION_LABEL_OFFSETS: u32 = 11;
/// Label ancestors, `E × u32`, ascending within each vertex's range.
pub const SECTION_LABEL_ANCESTORS: u32 = 12;
/// Label distances, `E × u64`, parallel to the ancestors.
pub const SECTION_LABEL_DISTS: u32 = 13;
/// Label first hops, `E × u32`; present only when path info is kept.
pub const SECTION_LABEL_HOPS: u32 = 14;
/// Sealed dynamic-update ops, WAL payload format framed as
/// `len u32 + payload` per record; record count is in the header.
pub const SECTION_OPS: u32 = 15;

/// Highest section kind currently defined (for validation).
pub const SECTION_KIND_MAX: u32 = 15;

/// Human-readable name of a section kind, for diagnostics (`islabel
/// stats --file`) and error messages. Unknown kinds answer `"unknown"`.
pub fn section_kind_name(kind: u32) -> &'static str {
    match kind {
        SECTION_GRAPH => "graph",
        SECTION_LEVELS => "levels",
        SECTION_PEEL_OFFSETS => "peel_offsets",
        SECTION_PEEL_EDGES => "peel_edges",
        SECTION_GK_OFFSETS => "gk_offsets",
        SECTION_GK_TARGETS => "gk_targets",
        SECTION_GK_WEIGHTS => "gk_weights",
        SECTION_GK_DENSE_OF => "gk_dense_of",
        SECTION_GK_GLOBAL_OF => "gk_global_of",
        SECTION_GK_VIAS => "gk_vias",
        SECTION_LABEL_OFFSETS => "label_offsets",
        SECTION_LABEL_ANCESTORS => "label_ancestors",
        SECTION_LABEL_DISTS => "label_dists",
        SECTION_LABEL_HOPS => "label_hops",
        SECTION_OPS => "ops",
        _ => "unknown",
    }
}

/// Header flag bit: labels carry first-hop path info.
pub const FLAG_KEEP_PATH_INFO: u32 = 1 << 0;
/// Header flag bit: the `SECTION_LABEL_HOPS` section is present.
pub const FLAG_HAS_HOPS: u32 = 1 << 1;
/// All flag bits a v3 reader understands; unknown bits fail validation.
pub const FLAG_MASK: u32 = FLAG_KEEP_PATH_INFO | FLAG_HAS_HOPS;

// Shared at-rest record layouts. These are the single source of truth for
// every crate that serializes the same records (the disk-resident label
// store in islabel-core::disklabel, the external-memory adjacency records
// in islabel-extmem, and the v3 sections here).
/// Bytes of one at-rest label entry: ancestor `u32` + distance `u64`.
pub const LABEL_ENTRY_BYTES: usize = 12;
/// Bytes of one at-rest offset-table slot (`u64`).
pub const LABEL_OFFSET_BYTES: usize = 8;
/// Bytes of one `(vertex, weight, via)` adjacency triple (`3 × u32`):
/// peel-adjacency entries, `G_k` via annotations, and the external-memory
/// adjacency records all share it.
pub const EDGE_TRIPLE_BYTES: usize = 12;

/// Why a byte region is not a valid v3 artifact. Every decode failure is
/// one of these — opening corrupt input never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The region is shorter than the fixed header + table.
    Truncated {
        /// Bytes required.
        need: u64,
        /// Bytes present.
        have: u64,
    },
    /// The magic bytes are not `ISLX`.
    BadMagic,
    /// The version field is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The header CRC does not match the header + table bytes.
    HeaderChecksum,
    /// A fixed header field is out of its valid range.
    Header(&'static str),
    /// A section-table entry is structurally invalid.
    Section {
        /// The entry's kind field.
        kind: u32,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// A section's bytes do not match the checksum in its table entry.
    SectionChecksum {
        /// The corrupted section's kind.
        kind: u32,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Truncated { need, have } => {
                write!(f, "artifact truncated: need {need} bytes, have {have}")
            }
            FormatError::BadMagic => write!(f, "bad magic (not an ISLX artifact)"),
            FormatError::UnsupportedVersion(v) => {
                write!(f, "unsupported store format version {v}")
            }
            FormatError::HeaderChecksum => write!(f, "header checksum mismatch"),
            FormatError::Header(what) => write!(f, "corrupt header: {what}"),
            FormatError::Section { kind, reason } => {
                write!(f, "corrupt section table entry (kind {kind}): {reason}")
            }
            FormatError::SectionChecksum { kind } => {
                write!(f, "section checksum mismatch (kind {kind})")
            }
        }
    }
}

impl std::error::Error for FormatError {}

impl From<FormatError> for io::Error {
    fn from(e: FormatError) -> io::Error {
        let kind = match e {
            FormatError::Truncated { .. } => io::ErrorKind::UnexpectedEof,
            _ => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, e.to_string())
    }
}

// CRC-32 (IEEE 802.3), table computed at compile time. This is the one
// checksum implementation in the workspace: the WAL in islabel-core
// re-exports it, and every v3 section checksum uses it.
const fn crc_entry(mut c: u32) -> u32 {
    let mut k = 0;
    while k < 8 {
        c = if c & 1 != 0 {
            0xEDB8_8320 ^ (c >> 1)
        } else {
            c >> 1
        };
        k += 1;
    }
    c
}

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // lint:allow(panic, const-eval index bounded by the `i < 256` loop — an overrun is a compile error, not a runtime panic)
        table[i] = crc_entry(i as u32);
        i += 1;
    }
    table
};

/// Streaming CRC-32 state, for checksumming a section as it is written.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` through the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &b in data {
            let idx = ((c ^ b as u32) & 0xFF) as usize;
            // The table has 256 entries and the index is masked to 8 bits.
            c = CRC_TABLE.get(idx).copied().unwrap_or(0) ^ (c >> 8);
        }
        self.state = c;
    }

    /// Finishes and returns the checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

// Section checksums use a 4-lane 64-bit word-folding checksum instead of
// CRC-32: table-driven CRC processes one byte per step (~hundreds of
// MB/s), which would make validate-on-open cost tens of milliseconds on a
// multi-megabyte artifact and erase the point of mmap-open. The lanes
// fold 8 input bytes each per step with an xor + odd-multiplier multiply
// (a bijection in the input word, so any single flipped bit changes the
// lane), interleaved so the four multiplies pipeline — several GB/s on
// one core. Not cryptographic; it detects corruption, not adversaries,
// exactly like the CRC it replaces. The definition below (little-endian
// words, zero-padded tail block, length folded into the finalizer) is
// frozen: it is part of the v3 artifact format.
const CK64_MUL: u64 = 0x9E37_79B9_7F4A_7C15;
const CK64_SEEDS: [u64; 4] = [
    0x243F_6A88_85A3_08D3,
    0x1319_8A2E_0370_7344,
    0xA409_3822_299F_31D0,
    0x082E_FA98_EC4E_6C89,
];

#[inline]
fn ck64_mix(lane: u64, word: u64) -> u64 {
    (lane ^ word).wrapping_mul(CK64_MUL).rotate_left(29)
}

#[inline]
fn ck64_word(chunk: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    for (dst, src) in w.iter_mut().zip(chunk) {
        *dst = *src;
    }
    u64::from_le_bytes(w)
}

#[inline]
fn ck64_absorb(lanes: &mut [u64; 4], block: &[u8]) {
    let mut words = block.chunks_exact(8);
    for lane in lanes.iter_mut() {
        *lane = ck64_mix(*lane, words.next().map_or(0, ck64_word));
    }
}

/// Streaming state of the 64-bit section checksum, for checksumming a
/// section as it is written. [`checksum64`] is the one-shot form; both
/// produce identical values for identical byte streams.
#[derive(Debug, Clone)]
pub struct Checksum64 {
    lanes: [u64; 4],
    /// Partial input block awaiting 32 buffered bytes.
    buf: [u8; 32],
    buffered: usize,
    /// Total bytes fed, folded into the finalizer so streams that differ
    /// only by trailing zero bytes do not collide.
    len: u64,
}

impl Default for Checksum64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Checksum64 {
    /// Fresh state.
    pub fn new() -> Self {
        Checksum64 {
            lanes: CK64_SEEDS,
            buf: [0u8; 32],
            buffered: 0,
            len: 0,
        }
    }

    /// Feeds `data` through the checksum.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buffered > 0 {
            let take = (32 - self.buffered).min(rest.len());
            if let Some((head, tail)) = rest.split_at_checked(take) {
                for (dst, src) in self.buf.iter_mut().skip(self.buffered).zip(head) {
                    *dst = *src;
                }
                self.buffered += take;
                rest = tail;
            }
            if self.buffered == 32 {
                let block = self.buf;
                ck64_absorb(&mut self.lanes, &block);
                self.buffered = 0;
            }
        }
        let mut blocks = rest.chunks_exact(32);
        for block in &mut blocks {
            ck64_absorb(&mut self.lanes, block);
        }
        // `rest` is nonempty only when the buffer drained above, so the
        // remainder always lands at the start of an empty buffer.
        let rem = blocks.remainder();
        for (dst, src) in self.buf.iter_mut().skip(self.buffered).zip(rem) {
            *dst = *src;
        }
        self.buffered += rem.len();
    }

    /// Finishes and returns the checksum.
    pub fn finalize(&self) -> u64 {
        let mut lanes = self.lanes;
        if self.buffered > 0 {
            // Zero-padded final block; the padding cannot alias real
            // trailing zeros because `len` enters the finalizer.
            let mut block = [0u8; 32];
            for (dst, src) in block.iter_mut().zip(self.buf.iter().take(self.buffered)) {
                *dst = *src;
            }
            ck64_absorb(&mut lanes, &block);
        }
        let mut h = self.len ^ CK64_MUL;
        for lane in lanes {
            h = (h.rotate_left(23) ^ lane).wrapping_mul(CK64_MUL);
        }
        h ^= h >> 32;
        h.wrapping_mul(CK64_MUL) ^ (h >> 29)
    }
}

/// One-shot 64-bit section checksum of `data` (see [`Checksum64`]).
pub fn checksum64(data: &[u8]) -> u64 {
    let mut c = Checksum64::new();
    c.update(data);
    c.finalize()
}

/// One section-table entry: where a section's bytes live and their
/// content checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// `SECTION_*` kind tag.
    pub kind: u32,
    /// Absolute byte offset in the file (8-aligned, ≥ [`DATA_START`]).
    pub offset: u64,
    /// Exact byte length (excludes inter-section padding).
    pub len: u64,
    /// [`checksum64`] over the section's `len` bytes.
    pub checksum: u64,
}

/// The decoded fixed header + section table of a v3 artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Artifact-lineage epoch pairing the artifact with its WAL.
    pub epoch: u64,
    /// `FLAG_*` bits.
    pub flags: u32,
    /// Hierarchy depth `k`.
    pub k: u32,
    /// k-selection tag (0 sigma-threshold, 1 fixed-k, 2 full).
    pub ksel_tag: u32,
    /// k-selection parameter as `f64` bits.
    pub ksel_bits: u64,
    /// Vertex universe size `n`.
    pub n: u64,
    /// Number of `G_k` members (dense ids) `m`.
    pub dense_m: u64,
    /// Sealed dynamic-update records in [`SECTION_OPS`]; 0 = pristine.
    pub op_count: u64,
    /// Declared sections, in table order (offset-ascending).
    pub sections: Vec<SectionEntry>,
}

fn get_u32(data: &[u8], at: usize) -> Option<u32> {
    let b = data.get(at..at.checked_add(4)?)?;
    Some(u32::from_le_bytes([
        *b.first()?,
        *b.get(1)?,
        *b.get(2)?,
        *b.get(3)?,
    ]))
}

fn get_u64(data: &[u8], at: usize) -> Option<u64> {
    let lo = get_u32(data, at)? as u64;
    let hi = get_u32(data, at.checked_add(4)?)? as u64;
    Some(lo | (hi << 32))
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl Header {
    /// Encodes the fixed header + full 16-slot table ([`DATA_START`]
    /// bytes), computing the header checksum. `sections` beyond
    /// [`MAX_SECTIONS`] are ignored (the writer enforces the bound).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(DATA_START);
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u64(&mut out, self.epoch);
        put_u32(&mut out, self.flags);
        put_u32(&mut out, self.k);
        put_u32(&mut out, self.ksel_tag);
        put_u32(&mut out, self.sections.len().min(MAX_SECTIONS) as u32);
        put_u64(&mut out, self.ksel_bits);
        put_u64(&mut out, self.n);
        put_u64(&mut out, self.dense_m);
        put_u64(&mut out, self.op_count);
        put_u32(&mut out, 0); // header crc, patched below
        put_u32(&mut out, 0); // reserved
        for s in self.sections.iter().take(MAX_SECTIONS) {
            put_u32(&mut out, s.kind);
            put_u32(&mut out, 0); // reserved
            put_u64(&mut out, s.offset);
            put_u64(&mut out, s.len);
            put_u64(&mut out, s.checksum);
        }
        out.resize(DATA_START, 0);
        let crc = crc32(&out);
        if let Some(slot) = out.get_mut(64..68) {
            slot.copy_from_slice(&crc.to_le_bytes());
        }
        out
    }

    /// Decodes and structurally validates the header + section table
    /// against a file of `file_len` total bytes: magic, version, header
    /// CRC, flag bits, and — for every declared section — kind range,
    /// kind uniqueness, 8-byte alignment, in-bounds extent, and ascending
    /// non-overlapping placement. Section *content* checksums are
    /// verified separately by [`validate_sections`] (they need the
    /// section bytes).
    pub fn decode(data: &[u8], file_len: u64) -> Result<Header, FormatError> {
        if data.len() < DATA_START {
            return Err(FormatError::Truncated {
                need: DATA_START as u64,
                have: data.len() as u64,
            });
        }
        if data.get(..4) != Some(MAGIC.as_slice()) {
            return Err(FormatError::BadMagic);
        }
        let version = get_u32(data, 4).unwrap_or(0);
        if version != FORMAT_VERSION {
            return Err(FormatError::UnsupportedVersion(version));
        }
        // Header checksum: the stored field zeroed, everything else exact.
        let stored_crc = get_u32(data, 64).unwrap_or(0);
        let mut crc = Crc32::new();
        crc.update(data.get(..64).unwrap_or(&[]));
        crc.update(&[0, 0, 0, 0]);
        crc.update(data.get(68..DATA_START).unwrap_or(&[]));
        if crc.finalize() != stored_crc {
            return Err(FormatError::HeaderChecksum);
        }

        let flags = get_u32(data, 16).unwrap_or(0);
        if flags & !FLAG_MASK != 0 {
            return Err(FormatError::Header("unknown flag bits"));
        }
        let section_count = get_u32(data, 28).unwrap_or(0) as usize;
        if section_count > MAX_SECTIONS {
            return Err(FormatError::Header("section count exceeds table"));
        }
        let header = Header {
            epoch: get_u64(data, 8).unwrap_or(0),
            flags,
            k: get_u32(data, 20).unwrap_or(0),
            ksel_tag: get_u32(data, 24).unwrap_or(0),
            ksel_bits: get_u64(data, 32).unwrap_or(0),
            n: get_u64(data, 40).unwrap_or(0),
            dense_m: get_u64(data, 48).unwrap_or(0),
            op_count: get_u64(data, 56).unwrap_or(0),
            sections: Self::decode_table(data, section_count, file_len)?,
        };
        Ok(header)
    }

    fn decode_table(
        data: &[u8],
        count: usize,
        file_len: u64,
    ) -> Result<Vec<SectionEntry>, FormatError> {
        let mut sections = Vec::with_capacity(count);
        let mut prev_end = DATA_START as u64;
        let mut seen = [false; SECTION_KIND_MAX as usize + 1];
        for slot in 0..MAX_SECTIONS {
            let base = HEADER_BYTES + slot * TABLE_ENTRY_BYTES;
            let kind = get_u32(data, base).unwrap_or(0);
            let offset = get_u64(data, base + 8).unwrap_or(0);
            let len = get_u64(data, base + 16).unwrap_or(0);
            let checksum = get_u64(data, base + 24).unwrap_or(0);
            if slot >= count {
                // Unused slots must be fully zeroed: a nonzero stray slot
                // means the count field and the table disagree.
                if kind != 0 || offset != 0 || len != 0 || checksum != 0 {
                    return Err(FormatError::Header("nonzero section slot past count"));
                }
                continue;
            }
            if kind == 0 || kind > SECTION_KIND_MAX {
                return Err(FormatError::Section {
                    kind,
                    reason: "unknown section kind",
                });
            }
            let seen_slot = seen.get_mut(kind as usize);
            match seen_slot {
                Some(s) if !*s => *s = true,
                _ => {
                    return Err(FormatError::Section {
                        kind,
                        reason: "duplicate section kind",
                    })
                }
            }
            if !offset.is_multiple_of(SECTION_ALIGN as u64) {
                return Err(FormatError::Section {
                    kind,
                    reason: "offset not 8-byte aligned",
                });
            }
            if offset < prev_end {
                return Err(FormatError::Section {
                    kind,
                    reason: "sections out of order or overlapping",
                });
            }
            let end = offset.checked_add(len).ok_or(FormatError::Section {
                kind,
                reason: "offset + len overflows",
            })?;
            if end > file_len {
                return Err(FormatError::Section {
                    kind,
                    reason: "extends past end of file",
                });
            }
            prev_end = end;
            sections.push(SectionEntry {
                kind,
                offset,
                len,
                checksum,
            });
        }
        Ok(sections)
    }

    /// The table entry for `kind`, if the artifact has that section.
    pub fn section(&self, kind: u32) -> Option<&SectionEntry> {
        self.sections.iter().find(|s| s.kind == kind)
    }

    /// Whether the artifact carries no sealed dynamic updates (and is
    /// therefore directly mmap-servable).
    pub fn is_pristine(&self) -> bool {
        self.op_count == 0
    }
}

/// Artifacts at least this large verify section checksums on scoped
/// threads, one per section; smaller ones stay single-threaded (thread
/// spawn costs more than the checksums).
const PARALLEL_VERIFY_BYTES: usize = 2 << 20;

/// Verifies every declared section's content checksum against the file
/// bytes. `data` must be the whole file (header included). This is the
/// O(file) half of validate-on-open; [`Header::decode`] is the O(1) half.
pub fn validate_sections(header: &Header, data: &[u8]) -> Result<(), FormatError> {
    let mut work = Vec::with_capacity(header.sections.len());
    for s in &header.sections {
        let lo = s.offset as usize;
        let hi = lo.saturating_add(s.len as usize);
        let bytes = data.get(lo..hi).ok_or(FormatError::Section {
            kind: s.kind,
            reason: "extends past end of file",
        })?;
        work.push((s.kind, s.checksum, bytes));
    }
    if data.len() >= PARALLEL_VERIFY_BYTES && work.len() > 1 {
        return std::thread::scope(|scope| {
            let handles: Vec<_> = work
                .iter()
                .map(|&(kind, want, bytes)| (kind, scope.spawn(move || checksum64(bytes) == want)))
                .collect();
            for (kind, handle) in handles {
                // A worker cannot panic (checksum64 is panic-free), but a
                // failed join must still degrade to an error, not a panic.
                if !handle.join().unwrap_or(false) {
                    return Err(FormatError::SectionChecksum { kind });
                }
            }
            Ok(())
        });
    }
    for (kind, want, bytes) in work {
        if checksum64(bytes) != want {
            return Err(FormatError::SectionChecksum { kind });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        Header {
            epoch: 7,
            flags: FLAG_KEEP_PATH_INFO | FLAG_HAS_HOPS,
            k: 4,
            ksel_tag: 0,
            ksel_bits: 0.875f64.to_bits(),
            n: 100,
            dense_m: 10,
            op_count: 0,
            sections: vec![
                SectionEntry {
                    kind: SECTION_LEVELS,
                    offset: DATA_START as u64,
                    len: 400,
                    checksum: checksum64(&[0u8; 400]),
                },
                SectionEntry {
                    kind: SECTION_LABEL_OFFSETS,
                    offset: DATA_START as u64 + 400,
                    len: 808,
                    checksum: checksum64(&[0u8; 808]),
                },
            ],
        }
    }

    fn encode_file(h: &Header) -> Vec<u8> {
        let mut buf = h.encode();
        buf.resize(DATA_START + 400 + 808, 0);
        buf
    }

    #[test]
    fn header_roundtrip() {
        let h = sample_header();
        let buf = encode_file(&h);
        let d = Header::decode(&buf, buf.len() as u64).unwrap();
        assert_eq!(d, h);
        validate_sections(&d, &buf).unwrap();
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The standard IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        let mut s = Crc32::new();
        s.update(b"1234");
        s.update(b"56789");
        assert_eq!(s.finalize(), 0xCBF4_3926);
    }

    #[test]
    fn rejects_bad_magic_version_and_crc() {
        let h = sample_header();
        let good = encode_file(&h);

        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(
            Header::decode(&bad, bad.len() as u64),
            Err(FormatError::BadMagic)
        );

        let mut bad = good.clone();
        bad[4] = 9;
        assert!(matches!(
            Header::decode(&bad, bad.len() as u64),
            Err(FormatError::UnsupportedVersion(9))
        ));

        let mut bad = good.clone();
        bad[40] ^= 1; // n field: covered by the header crc
        assert_eq!(
            Header::decode(&bad, bad.len() as u64),
            Err(FormatError::HeaderChecksum)
        );

        assert!(matches!(
            Header::decode(&good[..10], good.len() as u64),
            Err(FormatError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_bad_section_tables() {
        let mut h = sample_header();
        h.sections[1].offset = DATA_START as u64 + 4; // misaligned
        let buf = encode_file(&h);
        assert!(matches!(
            Header::decode(&buf, buf.len() as u64),
            Err(FormatError::Section { .. })
        ));

        let mut h = sample_header();
        h.sections[1].kind = SECTION_LEVELS; // duplicate
        let buf = encode_file(&h);
        assert!(matches!(
            Header::decode(&buf, buf.len() as u64),
            Err(FormatError::Section {
                reason: "duplicate section kind",
                ..
            })
        ));

        let h = sample_header();
        let buf = h.encode(); // no section bytes at all
        assert!(matches!(
            Header::decode(&buf, buf.len() as u64),
            Err(FormatError::Section {
                reason: "extends past end of file",
                ..
            })
        ));
    }

    #[test]
    fn section_checksums_catch_flips() {
        let h = sample_header();
        let mut buf = encode_file(&h);
        let d = Header::decode(&buf, buf.len() as u64).unwrap();
        buf[DATA_START + 3] ^= 0x40;
        assert_eq!(
            validate_sections(&d, &buf),
            Err(FormatError::SectionChecksum {
                kind: SECTION_LEVELS
            })
        );
    }
}
