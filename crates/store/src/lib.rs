//! # islabel-store — memory-mapped, zero-copy index artifacts
//!
//! The v3 flat `.islx` container: a fixed header + section table followed
//! by 8-byte-aligned little-endian sections, designed so a server opens
//! an index by mapping the file and validating it — O(1) in index size —
//! instead of deserializing every label into heap `Vec`s.
//!
//! This crate is deliberately **dependency-free** and graph-agnostic: it
//! knows bytes, sections, and checksums, not labels or hierarchies. It
//! sits *below* `islabel-core` in the workspace graph, which is what lets
//! it be the single source of truth for on-disk record layouts shared by
//! the core persist layer, the external-memory crates, and the CLI —
//! and what lets `islabel-core` stay `forbid(unsafe_code)` while the one
//! `unsafe` module in the workspace ([`mmap`]) lives here behind a safe
//! API.
//!
//! - [`mod@format`] — constants, header/section-table codec, CRC-32 (header)
//!   plus the 64-bit section content checksum, validate-on-open checks,
//!   shared record-layout constants. Panic-free zone: decoding untrusted
//!   bytes returns typed errors.
//! - [`mmap`] — the `// SAFETY:`-documented mapping shim (read-only
//!   private mapping with an aligned-heap fallback).
//! - [`writer`] / [`reader`] — streaming [`StoreWriter`] and validating
//!   [`StoreReader`].
//!
//! The byte layout is documented in the workspace README ("On-disk index
//! format") and wire-frozen via `docs/wire_registry.toml`.

pub mod format;
pub mod mmap;
pub mod reader;
pub mod writer;

pub use format::{FormatError, Header, SectionEntry};
pub use mmap::MappedFile;
pub use reader::StoreReader;
pub use writer::{ArtifactMeta, StoreWriter};
