//! Streaming v3 artifact writer.
//!
//! [`StoreWriter`] writes sections one at a time in a single forward
//! pass, checksumming as it goes, then seeks back once at the end to
//! patch the header + section table. Callers never hold a whole section
//! in memory: `write_u32s`/`write_u64s` convert to little-endian in
//! bounded chunks.

use std::io::{self, Seek, SeekFrom, Write};

use crate::format::{Checksum64, Header, SectionEntry, DATA_START, MAX_SECTIONS, SECTION_ALIGN};

/// The fixed header fields the caller supplies; the writer fills in the
/// section table.
#[derive(Debug, Clone)]
pub struct ArtifactMeta {
    /// Artifact-lineage epoch (pairs the artifact with its WAL).
    pub epoch: u64,
    /// `FLAG_*` bits (path info / hops).
    pub flags: u32,
    /// Hierarchy depth `k`.
    pub k: u32,
    /// k-selection strategy tag.
    pub ksel_tag: u32,
    /// k-selection parameter as `f64` bits.
    pub ksel_bits: u64,
    /// Vertex universe size.
    pub n: u64,
    /// Number of `G_k` members.
    pub dense_m: u64,
    /// Sealed dynamic-update records in the ops section.
    pub op_count: u64,
}

/// Writes a v3 `.islx` artifact section by section.
///
/// ```text
/// let mut w = StoreWriter::new(file, meta)?;
/// w.begin_section(SECTION_LEVELS)?;
/// w.write_u32s(&levels)?;
/// w.end_section()?;
/// …
/// let file = w.finish()?;   // seeks back and writes the header
/// ```
#[derive(Debug)]
pub struct StoreWriter<W: Write + Seek> {
    out: W,
    meta: ArtifactMeta,
    sections: Vec<SectionEntry>,
    /// Kind of the section currently open, if any.
    open: Option<u32>,
    /// Absolute offset of the next byte to be written.
    pos: u64,
    /// Running checksum of the open section.
    crc: Checksum64,
    /// Start offset of the open section.
    start: u64,
}

impl<W: Write + Seek> StoreWriter<W> {
    /// Starts an artifact: reserves the header + table region with
    /// zeroes (patched by [`finish`](Self::finish)).
    pub fn new(mut out: W, meta: ArtifactMeta) -> io::Result<Self> {
        out.write_all(&[0u8; DATA_START])?;
        Ok(StoreWriter {
            out,
            meta,
            sections: Vec::new(),
            open: None,
            pos: DATA_START as u64,
            crc: Checksum64::new(),
            start: 0,
        })
    }

    /// Opens a new section of the given kind. Sections must not nest.
    pub fn begin_section(&mut self, kind: u32) -> io::Result<()> {
        if self.open.is_some() {
            return Err(io::Error::other("store writer: section already open"));
        }
        if self.sections.len() >= MAX_SECTIONS {
            return Err(io::Error::other("store writer: section table full"));
        }
        if self.sections.iter().any(|s| s.kind == kind) {
            return Err(io::Error::other("store writer: duplicate section kind"));
        }
        // Pad to the section alignment so in-place u64 views are sound.
        let pad = (SECTION_ALIGN as u64 - self.pos % SECTION_ALIGN as u64) % SECTION_ALIGN as u64;
        if pad > 0 {
            self.out.write_all(&[0u8; SECTION_ALIGN][..pad as usize])?;
            self.pos += pad;
        }
        self.open = Some(kind);
        self.start = self.pos;
        self.crc = Checksum64::new();
        Ok(())
    }

    /// Appends raw bytes to the open section.
    pub fn write_bytes(&mut self, data: &[u8]) -> io::Result<()> {
        if self.open.is_none() {
            return Err(io::Error::other("store writer: no section open"));
        }
        self.out.write_all(data)?;
        self.crc.update(data);
        self.pos += data.len() as u64;
        Ok(())
    }

    /// Appends `u32`s to the open section as little-endian bytes.
    pub fn write_u32s(&mut self, values: &[u32]) -> io::Result<()> {
        let mut buf = [0u8; 4 * 1024];
        for chunk in values.chunks(1024) {
            for (i, v) in chunk.iter().enumerate() {
                buf[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
            }
            self.write_bytes(&buf[..chunk.len() * 4])?;
        }
        Ok(())
    }

    /// Appends `u64`s to the open section as little-endian bytes.
    pub fn write_u64s(&mut self, values: &[u64]) -> io::Result<()> {
        let mut buf = [0u8; 8 * 1024];
        for chunk in values.chunks(1024) {
            for (i, v) in chunk.iter().enumerate() {
                buf[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
            }
            self.write_bytes(&buf[..chunk.len() * 8])?;
        }
        Ok(())
    }

    /// Closes the open section, recording its table entry.
    pub fn end_section(&mut self) -> io::Result<()> {
        let kind = self
            .open
            .take()
            .ok_or_else(|| io::Error::other("store writer: no section open"))?;
        self.sections.push(SectionEntry {
            kind,
            offset: self.start,
            len: self.pos - self.start,
            checksum: self.crc.finalize(),
        });
        Ok(())
    }

    /// Seeks back, writes the finalized header + section table, flushes,
    /// and returns the underlying writer (so callers can `sync_all`).
    pub fn finish(mut self) -> io::Result<W> {
        if self.open.is_some() {
            return Err(io::Error::other("store writer: unclosed section"));
        }
        let header = Header {
            epoch: self.meta.epoch,
            flags: self.meta.flags,
            k: self.meta.k,
            ksel_tag: self.meta.ksel_tag,
            ksel_bits: self.meta.ksel_bits,
            n: self.meta.n,
            dense_m: self.meta.dense_m,
            op_count: self.meta.op_count,
            sections: self.sections,
        };
        self.out.seek(SeekFrom::Start(0))?;
        self.out.write_all(&header.encode())?;
        self.out.flush()?;
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{validate_sections, SECTION_LABEL_OFFSETS, SECTION_LEVELS};
    use std::io::Cursor;

    #[test]
    fn writer_produces_a_decodable_artifact() {
        let meta = ArtifactMeta {
            epoch: 42,
            flags: 0,
            k: 3,
            ksel_tag: 1,
            ksel_bits: 0,
            n: 5,
            dense_m: 2,
            op_count: 0,
        };
        let mut w = StoreWriter::new(Cursor::new(Vec::new()), meta).unwrap();
        w.begin_section(SECTION_LEVELS).unwrap();
        w.write_u32s(&[1, 2, 3, 2, 1]).unwrap();
        w.end_section().unwrap();
        w.begin_section(SECTION_LABEL_OFFSETS).unwrap();
        w.write_u64s(&[0, 1, 2, 3, 4, 5]).unwrap();
        w.end_section().unwrap();
        let buf = w.finish().unwrap().into_inner();

        let h = Header::decode(&buf, buf.len() as u64).unwrap();
        assert_eq!(h.epoch, 42);
        assert_eq!(h.sections.len(), 2);
        validate_sections(&h, &buf).unwrap();

        let levels = h.section(SECTION_LEVELS).unwrap();
        // 5 u32s, starting right at DATA_START (already aligned).
        assert_eq!(levels.offset, DATA_START as u64);
        assert_eq!(levels.len, 20);
        // The next section got padded to the 8-byte boundary.
        let offs = h.section(SECTION_LABEL_OFFSETS).unwrap();
        assert_eq!(offs.offset % 8, 0);
        assert_eq!(offs.offset, DATA_START as u64 + 24);
        assert_eq!(offs.len, 48);
    }

    #[test]
    fn writer_rejects_misuse() {
        let meta = ArtifactMeta {
            epoch: 0,
            flags: 0,
            k: 0,
            ksel_tag: 0,
            ksel_bits: 0,
            n: 0,
            dense_m: 0,
            op_count: 0,
        };
        let mut w = StoreWriter::new(Cursor::new(Vec::new()), meta.clone()).unwrap();
        assert!(w.write_bytes(b"x").is_err()); // no section open
        assert!(w.end_section().is_err());
        w.begin_section(SECTION_LEVELS).unwrap();
        assert!(w.begin_section(SECTION_LEVELS).is_err()); // nested
        assert!(w.finish().is_err()); // unclosed

        let mut w = StoreWriter::new(Cursor::new(Vec::new()), meta).unwrap();
        w.begin_section(SECTION_LEVELS).unwrap();
        w.end_section().unwrap();
        assert!(w.begin_section(SECTION_LEVELS).is_err()); // duplicate kind
    }
}
