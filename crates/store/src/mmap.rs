//! Read-only memory mapping with a heap fallback.
//!
//! This is one of the workspace's two product unsafe zones (`lint.toml
//! [unsafe] allowed_files`; the other is the SIMD intersection kernel in
//! `islabel-core`): a minimal shim over `mmap(2)`/`munmap(2)` declared
//! directly against libc, since the offline build cannot pull the `libc`
//! or `memmap2` crates. Everything else in the workspace forbids or
//! denies `unsafe_code` and consumes the mapping through the safe
//! [`MappedFile`] API.
//!
//! Design rules that keep the unsafety contained:
//!
//! - The mapping is always `PROT_READ` + `MAP_PRIVATE`: the kernel
//!   guarantees nothing can write through it, and writes to the file by
//!   other processes are not reflected (no aliasing with `&[u8]`).
//! - The mapped length is captured once at creation and never changes;
//!   the pointer is never exposed, only reborrowed as `&[u8]` tied to
//!   `&self`.
//! - Typed views (`&[u32]`, `&[u64]`) are produced only after explicit
//!   alignment and length checks, and only on little-endian targets
//!   (section bytes are little-endian on disk); elsewhere the casts
//!   return `None` and callers fall back to copying parses.
//! - If `mmap` is unavailable or fails, we silently fall back to reading
//!   the file into an 8-byte-aligned heap buffer — same API, no unsafe
//!   on that path.

#![allow(unsafe_code)]

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

#[cfg(unix)]
mod sys {
    //! The raw syscall surface. Constants match the Linux and BSD ABIs
    //! for the flags we use (PROT_READ and MAP_PRIVATE are 1 and 2 on
    //! every supported unix).

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    /// Linux-only: prefault the whole mapping in the `mmap` call itself,
    /// so the validate-on-open pass reads at memory speed instead of
    /// taking one soft page fault per 4 KiB.
    #[cfg(target_os = "linux")]
    pub const MAP_POPULATE: i32 = 0x8000;

    extern "C" {
        // SAFETY: signatures match POSIX mmap/munmap as exported by the
        // platform libc that std already links against.
        pub fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    /// `MAP_FAILED` is `(void*)-1`, not null.
    pub fn map_failed() -> *mut u8 {
        usize::MAX as *mut u8
    }
}

#[cfg(unix)]
use std::os::unix::io::AsRawFd;

enum Backing {
    /// A live `mmap` region: base pointer and exact byte length.
    #[cfg(unix)]
    Map { ptr: *mut u8, len: usize },
    /// Heap fallback: the file copied into a `u64`-backed (8-aligned)
    /// buffer. `len` is the real byte length; the buffer is padded up.
    Heap { buf: Vec<u64>, len: usize },
}

/// A read-only view of a file's bytes, memory-mapped when possible and
/// heap-loaded otherwise. The base is always 8-byte aligned (page
/// alignment for mappings, `Vec<u64>` alignment for the fallback), which
/// is what makes in-place `u32`/`u64` section views sound.
pub struct MappedFile {
    backing: Backing,
}

impl std::fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedFile")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

// SAFETY: the region is immutable for the lifetime of the value — the
// kernel mapping is PROT_READ/MAP_PRIVATE and the heap variant is never
// written after construction — so sharing references across threads is
// sound, exactly as for a Vec<u8> behind &self.
unsafe impl Send for MappedFile {}
// SAFETY: as above; all access is through &self and read-only.
unsafe impl Sync for MappedFile {}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Map { ptr, len } = self.backing {
            // SAFETY: ptr/len are exactly what mmap returned for this
            // value and the mapping has not been unmapped before (Drop
            // runs once); after this, no &[u8] borrows remain because
            // they were all tied to &self.
            unsafe {
                let _ = sys::munmap(ptr, len);
            }
        }
    }
}

fn read_aligned(file: &mut File, len: usize) -> io::Result<Vec<u64>> {
    let words = len.div_ceil(8);
    let mut buf = vec![0u64; words];
    let mut read = 0usize;
    while read < len {
        // Safe little-endian staging copy: read into a byte chunk, then
        // store whole words. Chunked to bound the temporary.
        let take = (len - read).min(1 << 20);
        let mut tmp = vec![0u8; take];
        file.read_exact(&mut tmp)?;
        for (i, b) in tmp.iter().enumerate() {
            let at = read + i;
            if let Some(w) = buf.get_mut(at / 8) {
                *w |= (*b as u64) << ((at % 8) * 8);
            }
        }
        read += take;
    }
    Ok(buf)
}

impl MappedFile {
    /// Opens `path` read-only and maps it (falling back to a heap copy if
    /// mapping fails or the platform has no `mmap`).
    pub fn open(path: &Path) -> io::Result<MappedFile> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            return Ok(MappedFile {
                backing: Backing::Heap {
                    buf: Vec::new(),
                    len: 0,
                },
            });
        }
        #[cfg(unix)]
        {
            let fd = file.as_raw_fd();
            #[cfg(target_os = "linux")]
            let flags = sys::MAP_PRIVATE | sys::MAP_POPULATE;
            #[cfg(not(target_os = "linux"))]
            let flags = sys::MAP_PRIVATE;
            // SAFETY: fd is a valid open descriptor for the duration of
            // the call; len > 0; addr null lets the kernel pick; the
            // mapping is read-only and private so it cannot alias any
            // mutable state. The File may close after this — a private
            // read-only mapping outlives its descriptor.
            let ptr = unsafe { sys::mmap(std::ptr::null_mut(), len, sys::PROT_READ, flags, fd, 0) };
            // An old kernel may reject MAP_POPULATE outright; retry plain.
            // SAFETY: same contract as above, flags differ only.
            #[cfg(target_os = "linux")]
            let ptr = if ptr == sys::map_failed() || ptr.is_null() {
                unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        fd,
                        0,
                    )
                }
            } else {
                ptr
            };
            if ptr != sys::map_failed() && !ptr.is_null() {
                return Ok(MappedFile {
                    backing: Backing::Map { ptr, len },
                });
            }
        }
        let buf = read_aligned(&mut file, len)?;
        Ok(MappedFile {
            backing: Backing::Heap { buf, len },
        })
    }

    /// Wraps an in-memory byte buffer (copied into aligned storage).
    /// Used by tests and by readers over non-file sources.
    pub fn from_vec(bytes: Vec<u8>) -> MappedFile {
        let len = bytes.len();
        let mut buf = vec![0u64; len.div_ceil(8)];
        for (at, b) in bytes.iter().enumerate() {
            if let Some(w) = buf.get_mut(at / 8) {
                *w |= (*b as u64) << ((at % 8) * 8);
            }
        }
        MappedFile {
            backing: Backing::Heap { buf, len },
        }
    }

    /// Total mapped bytes.
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(unix)]
            Backing::Map { len, .. } => *len,
            Backing::Heap { len, .. } => *len,
        }
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the bytes are served by a real kernel mapping (`true`) or
    /// the heap fallback (`false`). Surfaced in `stats --file`.
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Map { .. } => true,
            Backing::Heap { .. } => false,
        }
    }

    /// The whole region as bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Map { ptr, len } => {
                // SAFETY: ptr..ptr+len is a live PROT_READ mapping owned
                // by self (unmapped only in Drop); it is never written
                // through, and the returned borrow is tied to &self so it
                // cannot outlive the mapping. u8 has no alignment or
                // validity requirements.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Backing::Heap { buf, len } => {
                let ptr = buf.as_ptr() as *const u8;
                // SAFETY: buf owns at least `len` bytes (it was sized as
                // ceil(len/8) u64 words) and u8 reads of initialized u64
                // storage are always valid; the borrow is tied to &self.
                unsafe { std::slice::from_raw_parts(ptr, *len) }
            }
        }
    }
}

/// Views `bytes` as little-endian `u32`s in place. Returns `None` if the
/// length is not a multiple of 4, the base is not 4-aligned, or the
/// target is big-endian (where an in-place view would read wrong values —
/// callers then fall back to a copying parse).
pub fn cast_u32s(bytes: &[u8]) -> Option<&[u32]> {
    #[cfg(target_endian = "little")]
    {
        if !bytes.len().is_multiple_of(4) || !(bytes.as_ptr() as usize).is_multiple_of(4) {
            return None;
        }
        // SAFETY: the pointer is 4-aligned and the region holds
        // len/4 u32s of initialized memory; every bit pattern is a valid
        // u32, and on this (little-endian) target the in-memory order
        // matches the on-disk order. Borrow is tied to `bytes`.
        Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, bytes.len() / 4) })
    }
    #[cfg(not(target_endian = "little"))]
    {
        let _ = bytes;
        None
    }
}

/// Views `bytes` as little-endian `u64`s in place; same contract as
/// [`cast_u32s`] with 8-byte alignment.
pub fn cast_u64s(bytes: &[u8]) -> Option<&[u64]> {
    #[cfg(target_endian = "little")]
    {
        if !bytes.len().is_multiple_of(8) || !(bytes.as_ptr() as usize).is_multiple_of(8) {
            return None;
        }
        // SAFETY: 8-aligned pointer, len/8 u64s of initialized memory,
        // all bit patterns valid, little-endian target matches the disk
        // byte order. Borrow is tied to `bytes`.
        Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u64, bytes.len() / 8) })
    }
    #[cfg(not(target_endian = "little"))]
    {
        let _ = bytes;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_preserves_bytes_and_alignment() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let m = MappedFile::from_vec(data.clone());
        assert_eq!(m.bytes(), &data[..]);
        assert_eq!(m.len(), 1000);
        assert!(!m.is_mapped());
        assert_eq!(m.bytes().as_ptr() as usize % 8, 0);
    }

    #[test]
    fn open_maps_a_real_file() {
        let path = std::env::temp_dir().join(format!("islabel-mmap-test-{}", std::process::id()));
        let data: Vec<u8> = (0..4096u32).flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(&path, &data).unwrap();
        let m = MappedFile::open(&path).unwrap();
        assert_eq!(m.len(), data.len());
        assert_eq!(m.bytes(), &data[..]);
        // On unix this should be a real mapping.
        #[cfg(unix)]
        assert!(m.is_mapped());
        let words = cast_u32s(m.bytes()).unwrap();
        assert_eq!(words[0], 0);
        assert_eq!(words[4095], 4095);
        drop(m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_is_fine() {
        let path = std::env::temp_dir().join(format!("islabel-mmap-empty-{}", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        let m = MappedFile::open(&path).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.bytes(), b"");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn casts_enforce_length_and_alignment() {
        let m = MappedFile::from_vec(vec![1, 0, 0, 0, 2, 0, 0, 0]);
        let b = m.bytes();
        assert_eq!(cast_u32s(b), Some(&[1u32, 2][..]));
        assert_eq!(cast_u64s(b), Some(&[(2u64 << 32) | 1][..]));
        assert!(cast_u32s(&b[..3]).is_none()); // length
        assert!(cast_u32s(&b[1..5]).is_none()); // alignment
        assert!(cast_u64s(&b[4..]).is_none()); // alignment
    }

    #[test]
    fn threads_can_share_a_mapping() {
        let m = std::sync::Arc::new(MappedFile::from_vec(vec![7u8; 64]));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || m.bytes().iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7 * 64);
        }
    }
}
