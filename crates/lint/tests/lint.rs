//! Integration suite for `islabel-lint`: fixture files must trip their
//! rules at the expected lines, clean twins must pass, the wire-registry
//! diff must catch drift, and — the point of the whole crate — the real
//! workspace must lint clean (so CI can block on it).

use islabel_lint::{check_file, registry, rules::Finding, LintConfig};
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    // crates/lint -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has two ancestors")
        .to_path_buf()
}

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// A config that puts exactly `path` into the zones named by `zones`.
fn zone_cfg(path: &str, zones: &[&str]) -> LintConfig {
    let mut toml = String::from("[files]\nroots = [\"fixtures\"]\n");
    if zones.contains(&"panic") {
        toml.push_str(&format!("[panic_free]\npaths = [\"{path}\"]\n"));
    }
    if zones.contains(&"alloc") {
        toml.push_str(&format!(
            "[[alloc_free]]\npath = \"{path}\"\nfunctions = [\"hot\"]\n"
        ));
    }
    if zones.contains(&"ordering") {
        toml.push_str(&format!("[ordering]\npaths = [\"{path}\"]\n"));
    }
    if zones.contains(&"unsafe_root") {
        toml.push_str(&format!("[unsafe]\nforbid_crate_roots = [\"{path}\"]\n"));
    }
    LintConfig::parse(&toml).expect("fixture config parses")
}

fn lines_of(findings: &[Finding], rule: &str) -> Vec<u32> {
    let mut v: Vec<u32> = findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn panic_fixture_trips_every_construct() {
    let cfg = zone_cfg("f.rs", &["panic"]);
    let findings = check_file("f.rs", &fixture("panic_violating.rs"), &cfg);
    // unwrap, expect, panic!, unreachable!, buf[0], and buf[1] (the
    // reasonless allow must not suppress it); test-module panics masked.
    assert_eq!(lines_of(&findings, "panic"), vec![7, 8, 9, 10, 11, 13]);
    assert_eq!(
        lines_of(&findings, "allow-hygiene"),
        vec![12],
        "reasonless allow is itself a finding: {findings:?}"
    );
}

#[test]
fn panic_clean_fixture_passes() {
    let cfg = zone_cfg("f.rs", &["panic"]);
    let findings = check_file("f.rs", &fixture("panic_clean.rs"), &cfg);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn alloc_fixture_trips_only_zoned_function() {
    let cfg = zone_cfg("f.rs", &["alloc"]);
    let findings = check_file("f.rs", &fixture("alloc_violating.rs"), &cfg);
    // Six allocation sites inside `hot`; `build`'s Vec::new is unzoned.
    assert_eq!(lines_of(&findings, "alloc"), vec![11, 12, 13, 14, 15, 16]);
}

#[test]
fn alloc_clean_fixture_passes() {
    let cfg = zone_cfg("f.rs", &["alloc"]);
    let findings = check_file("f.rs", &fixture("alloc_clean.rs"), &cfg);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn ordering_fixture_trips_unjustified_atomics() {
    let cfg = zone_cfg("f.rs", &["ordering"]);
    let findings = check_file("f.rs", &fixture("ordering_violating.rs"), &cfg);
    assert_eq!(lines_of(&findings, "ordering"), vec![8, 9, 13]);
}

#[test]
fn ordering_clean_fixture_passes() {
    let cfg = zone_cfg("f.rs", &["ordering"]);
    let findings = check_file("f.rs", &fixture("ordering_clean.rs"), &cfg);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unsafe_fixture_trips_block_and_missing_forbid() {
    let cfg = zone_cfg("f.rs", &["unsafe_root"]);
    let findings = check_file("f.rs", &fixture("unsafe_violating.rs"), &cfg);
    // The naked unsafe block, plus the missing #![forbid(unsafe_code)].
    assert_eq!(lines_of(&findings, "unsafe"), vec![1, 5]);
}

#[test]
fn unsafe_clean_fixture_passes() {
    let cfg = zone_cfg("f.rs", &["unsafe_root"]);
    let findings = check_file("f.rs", &fixture("unsafe_clean.rs"), &cfg);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unused_allow_in_zone_is_flagged() {
    let cfg = zone_cfg("f.rs", &["panic"]);
    let src = "// lint:allow(panic, stale justification)\npub fn safe() -> u8 { 0 }\n";
    let findings = check_file("f.rs", src, &cfg);
    assert_eq!(lines_of(&findings, "allow-hygiene"), vec![1]);
}

/// Renumbering one wire error code in the registry must produce exactly
/// one finding naming that constant with both values — driven by the
/// REAL protocol source, so extraction is tested against the code it
/// actually gates.
#[test]
fn registry_drift_reports_exactly_the_mutated_constant() {
    let root = repo_root();
    let cfg = LintConfig::load(&root).expect("repo lint.toml loads");
    let reg_src = std::fs::read_to_string(root.join(&cfg.registry_path)).expect("registry reads");

    // Sanity: unmutated registry agrees with the code.
    assert!(
        islabel_lint::registry_findings(&root, &cfg)
            .expect("registry diff runs")
            .is_empty(),
        "workspace registry must match the code before mutation"
    );

    // Mutate one error code in a copy and diff manually.
    let mutated = reg_src.replace("StaleIndex = 2", "StaleIndex = 9");
    assert_ne!(mutated, reg_src, "fixture assumption: StaleIndex = 2");
    let proto = std::fs::read_to_string(root.join(&cfg.protocol_path)).expect("protocol reads");
    let wal = std::fs::read_to_string(root.join(&cfg.wal_path)).expect("wal reads");
    let store = std::fs::read_to_string(root.join(&cfg.store_path)).expect("store format reads");
    let obs = std::fs::read_to_string(root.join(&cfg.obs_path)).expect("obs names read");
    let mut extracted = registry::extract_protocol(&proto);
    registry::extract_wal(&wal, &mut extracted);
    registry::extract_store(&store, &mut extracted);
    registry::extract_metric_names(&obs, &mut extracted);
    let reg = registry::Registry::parse(&mutated).expect("mutated registry parses");
    let findings = registry::diff(
        &extracted,
        &reg,
        &cfg.protocol_path,
        &cfg.wal_path,
        &cfg.store_path,
        &cfg.obs_path,
        &cfg.registry_path,
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "wire-registry");
    assert!(f.message.contains("StaleIndex"), "{f}");
    assert!(
        f.message.contains('2') && f.message.contains('9'),
        "both values must appear: {f}"
    );
    assert_eq!(
        f.file, cfg.protocol_path,
        "points at the code, not the toml"
    );
}

/// Extraction must see the full real constant surface — if the protocol
/// module moves, this fails before the diff starts silently passing on
/// empty sets.
#[test]
fn registry_extraction_covers_the_real_surface() {
    let root = repo_root();
    let cfg = LintConfig::load(&root).expect("repo lint.toml loads");
    let proto = std::fs::read_to_string(root.join(&cfg.protocol_path)).expect("protocol reads");
    let wal = std::fs::read_to_string(root.join(&cfg.wal_path)).expect("wal reads");
    let obs = std::fs::read_to_string(root.join(&cfg.obs_path)).expect("obs names read");
    let mut extracted = registry::extract_protocol(&proto);
    registry::extract_wal(&wal, &mut extracted);
    registry::extract_metric_names(&obs, &mut extracted);
    assert_eq!(extracted.opcodes.len(), 8, "{:?}", extracted.opcodes);
    assert_eq!(
        extracted.error_codes.len(),
        11,
        "{:?}",
        extracted.error_codes
    );
    assert_eq!(extracted.wal_kinds.len(), 3, "{:?}", extracted.wal_kinds);
    assert!(extracted.protocol_version.is_some());
    assert!(extracted.wal_version.is_some());
    // Every exported metric family name must be extracted; the count is
    // pinned so adding a METRIC_ constant forces a registry update here
    // too, keeping this guard honest.
    assert_eq!(
        extracted.metric_names.len(),
        27,
        "{:?}",
        extracted.metric_names
    );
    assert!(extracted
        .metric_names
        .iter()
        .all(|m| m.value.starts_with("islabel_")));
}

/// THE self-check: the shipped workspace lints clean. Every rule runs
/// over the real sources with the real lint.toml; any regression — a new
/// unwrap in the decoder, an unjustified ordering, a renumbered wire
/// code — fails this test (and the standalone CI job).
#[test]
fn workspace_lints_clean() {
    let root = repo_root();
    let cfg = LintConfig::load(&root).expect("repo lint.toml loads");
    let findings = islabel_lint::run(&root, &cfg).expect("lint runs");
    assert!(
        findings.is_empty(),
        "workspace must lint clean; findings:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The binary contract CI relies on: exit 0 + "0 findings" on the real
/// workspace, nonzero with file:line diagnostics on a violating tree.
#[test]
fn binary_exit_codes_and_diagnostics() {
    let root = repo_root();
    let out = Command::new(env!("CARGO_BIN_EXE_islabel-lint"))
        .arg("--root")
        .arg(&root)
        .output()
        .expect("run islabel-lint");
    assert!(
        out.status.success(),
        "workspace run must exit 0; stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    // A violating mini-workspace: a panic zone seeded with an unwrap.
    let dir = std::env::temp_dir().join(format!(
        "islabel-lint-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("src")).expect("mkdir");
    std::fs::write(
        dir.join("lint.toml"),
        "[files]\nroots = [\"src\"]\n[panic_free]\npaths = [\"src/decode.rs\"]\n",
    )
    .expect("write lint.toml");
    std::fs::write(
        dir.join("src/decode.rs"),
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    )
    .expect("write decode.rs");

    let out = Command::new(env!("CARGO_BIN_EXE_islabel-lint"))
        .arg("--root")
        .arg(&dir)
        .output()
        .expect("run islabel-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "violation must exit nonzero");
    assert!(
        stdout.contains("src/decode.rs:1: [panic]"),
        "diagnostic must be file:line: [rule]; got:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Zone paths that stop existing must fail the lint, not silently narrow
/// its coverage.
#[test]
fn stale_zone_path_is_reported() {
    let root = repo_root();
    let mut cfg = LintConfig::load(&root).expect("repo lint.toml loads");
    cfg.panic_free.push("crates/net/src/renamed_away.rs".into());
    let findings = islabel_lint::run(&root, &cfg).expect("lint runs");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "zone-config");
    assert!(findings[0].message.contains("renamed_away.rs"));
}
