#![forbid(unsafe_code)]

//! CLI entry point: `cargo run -p islabel-lint -- [--root DIR]`.
//!
//! Finds `lint.toml` by walking up from the current directory (or uses
//! `--root`), runs every rule, prints one `file:line: [rule] message`
//! diagnostic per finding, and exits nonzero when anything is reported —
//! which is what makes it usable as a blocking CI job.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "islabel-lint: workspace invariant checker\n\
                     \n\
                     USAGE:\n\
                     \x20   cargo run -p islabel-lint -- [--root DIR]\n\
                     \n\
                     Reads <root>/lint.toml (found by walking up from the current\n\
                     directory unless --root is given), checks the panic-free,\n\
                     alloc-free, ordering, unsafe-hygiene, and wire-registry rules,\n\
                     and prints one 'file:line: [rule] message' line per finding.\n\
                     \n\
                     EXIT CODES:\n\
                     \x20   0  no findings\n\
                     \x20   1  findings reported, or the analyzer itself failed\n\
                     \n\
                     See the README section \"Static analysis\" for the rule table."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot determine current directory: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match islabel_lint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "no lint.toml found walking up from {}; run from inside the \
                         repo or pass --root",
                        cwd.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let cfg = match islabel_lint::LintConfig::load(&root) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("lint.toml: {e}");
            return ExitCode::FAILURE;
        }
    };

    match islabel_lint::run(&root, &cfg) {
        Ok(findings) if findings.is_empty() => {
            println!("islabel-lint: 0 findings");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("islabel-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("islabel-lint: {e}");
            ExitCode::FAILURE
        }
    }
}
