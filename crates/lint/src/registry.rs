//! Rule `wire-registry`: the on-the-wire constants are a compatibility
//! contract, so they live twice — in the code and in the checked-in
//! `docs/wire_registry.toml` — and this module diffs the two.
//!
//! Extraction is token-based, not regex-based: opcodes are the `const`s
//! inside `mod opcode`, error codes are the match arms of
//! `WireError::code()`, the protocol version is the `VERSION` const, the
//! WAL side contributes its `KIND_*` record kinds and `WAL_VERSION`, and
//! the store format contributes its `SECTION_*` kinds and
//! `FORMAT_VERSION` (the at-rest artifact is a compatibility surface just
//! like the wire). The observability crate contributes its `METRIC_*`
//! string constants — exported metric family names are a scrape-side
//! contract, so renaming one breaks dashboards exactly like renumbering
//! an opcode breaks clients. Renumbering or renaming any of them (or
//! adding one without registering it) is a lint failure with both values
//! in the message.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::rules::Finding;
use crate::toml;
use std::collections::BTreeMap;

/// A named wire constant with where it was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireConst {
    /// Constant name as it appears in code (e.g. `PING`,
    /// `VertexOutOfRange`, `KIND_INSERT_EDGE`).
    pub name: String,
    /// Numeric value.
    pub value: i64,
    /// 1-based line in the source file.
    pub line: u32,
}

/// A named string constant (a metric family name) with where it was
/// found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrConst {
    /// Constant name as it appears in code (e.g. `METRIC_NET_QUERIES_TOTAL`).
    pub name: String,
    /// The string value, quotes stripped (e.g. `islabel_net_queries_total`).
    pub value: String,
    /// 1-based line in the source file.
    pub line: u32,
}

/// Everything extracted from the protocol and WAL sources.
#[derive(Debug, Default)]
pub struct Extracted {
    /// `mod opcode` constants.
    pub opcodes: Vec<WireConst>,
    /// `WireError::code()` match arms.
    pub error_codes: Vec<WireConst>,
    /// `VERSION` protocol constant.
    pub protocol_version: Option<WireConst>,
    /// WAL `KIND_*` record kinds.
    pub wal_kinds: Vec<WireConst>,
    /// `WAL_VERSION` constant.
    pub wal_version: Option<WireConst>,
    /// Store-format `SECTION_*` constants (kinds plus the frozen
    /// alignment/max layout constants sharing the prefix).
    pub store_sections: Vec<WireConst>,
    /// Store `FORMAT_VERSION` constant.
    pub store_version: Option<WireConst>,
    /// Observability `METRIC_*` metric-name constants.
    pub metric_names: Vec<StrConst>,
}

fn parse_num(tok: &Tok) -> Option<i64> {
    let text = tok.text.replace('_', "");
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        // Numeric literals may carry a type suffix (`0x01u8`).
        let hex = hex.trim_end_matches(|c: char| !c.is_ascii_hexdigit());
        return i64::from_str_radix(hex, 16).ok();
    }
    let dec: String = text.chars().take_while(|c| c.is_ascii_digit()).collect();
    dec.parse().ok()
}

/// Finds `const NAME … = VALUE` starting at token `i` (which must be the
/// `const` keyword); returns the constant and the token index past it.
fn parse_const(toks: &[Tok], i: usize) -> Option<(WireConst, usize)> {
    if !toks[i].is_ident("const") {
        return None;
    }
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut j = i + 2;
    while j < toks.len() && !toks[j].is_punct(b'=') && !toks[j].is_punct(b';') {
        j += 1;
    }
    if j >= toks.len() || !toks[j].is_punct(b'=') {
        return None;
    }
    let value_tok = toks.get(j + 1)?;
    let value = parse_num(value_tok)?;
    Some((
        WireConst {
            name: name_tok.text.clone(),
            value,
            line: name_tok.line,
        },
        j + 2,
    ))
}

/// Brace-matched span of the block that opens at the first `{` at or
/// after `start`; returns (open_idx, one_past_close_idx).
fn block_span(toks: &[Tok], start: usize) -> Option<(usize, usize)> {
    let open = (start..toks.len()).find(|&k| toks[k].is_punct(b'{'))?;
    let mut depth = 0usize;
    for (k, tok) in toks.iter().enumerate().skip(open) {
        match tok.kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, k + 1));
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts the wire constants from the protocol source.
pub fn extract_protocol(src: &str) -> Extracted {
    let lexed = crate::lexer::lex(src);
    let toks = &lexed.toks;
    let mut out = Extracted::default();

    for i in 0..toks.len() {
        // `mod opcode { const … }`
        if toks[i].is_ident("mod") && toks.get(i + 1).is_some_and(|t| t.is_ident("opcode")) {
            if let Some((open, close)) = block_span(toks, i + 2) {
                let mut k = open;
                while k < close {
                    if let Some((c, next)) = parse_const(toks, k) {
                        out.opcodes.push(c);
                        k = next;
                    } else {
                        k += 1;
                    }
                }
            }
        }
        // `fn code(&self) -> u8 { match self { WireError::X { .. } => N, … } }`
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.is_ident("code")) {
            if let Some((open, close)) = block_span(toks, i + 2) {
                let mut k = open;
                while k + 5 < close {
                    if toks[k].is_ident("WireError")
                        && toks[k + 1].is_punct(b':')
                        && toks[k + 2].is_punct(b':')
                        && toks[k + 3].kind == TokKind::Ident
                    {
                        let name = toks[k + 3].text.clone();
                        let line = toks[k + 3].line;
                        // Skip an optional `{ .. }` payload pattern.
                        let mut j = k + 4;
                        if toks[j].is_punct(b'{') {
                            if let Some((_, past)) = block_span(toks, j) {
                                j = past;
                            }
                        }
                        if toks.get(j).is_some_and(|t| t.is_punct(b'='))
                            && toks.get(j + 1).is_some_and(|t| t.is_punct(b'>'))
                        {
                            if let Some(v) = toks.get(j + 2).and_then(parse_num_ref) {
                                out.error_codes.push(WireConst {
                                    name,
                                    value: v,
                                    line,
                                });
                            }
                        }
                        k = j;
                    } else {
                        k += 1;
                    }
                }
            }
        }
        // `const VERSION: u16 = 1`
        if toks[i].is_ident("const") && toks.get(i + 1).is_some_and(|t| t.is_ident("VERSION")) {
            if let Some((c, _)) = parse_const(toks, i) {
                out.protocol_version = Some(c);
            }
        }
    }
    out
}

fn parse_num_ref(tok: &Tok) -> Option<i64> {
    parse_num(tok)
}

/// Extracts the WAL record kinds and format version.
pub fn extract_wal(src: &str, into: &mut Extracted) {
    let lexed = crate::lexer::lex(src);
    extract_wal_lexed(&lexed, into);
}

fn extract_wal_lexed(lexed: &Lexed, into: &mut Extracted) {
    let toks = &lexed.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if let Some((c, next)) = parse_const(toks, i) {
            if c.name.starts_with("KIND_") {
                into.wal_kinds.push(c);
            } else if c.name == "WAL_VERSION" {
                into.wal_version = Some(c);
            }
            i = next;
        } else {
            i += 1;
        }
    }
}

/// Extracts the store-format section kinds and artifact format version.
pub fn extract_store(src: &str, into: &mut Extracted) {
    let lexed = crate::lexer::lex(src);
    let toks = &lexed.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if let Some((c, next)) = parse_const(toks, i) {
            if c.name.starts_with("SECTION_") {
                into.store_sections.push(c);
            } else if c.name == "FORMAT_VERSION" {
                into.store_version = Some(c);
            }
            i = next;
        } else {
            i += 1;
        }
    }
}

/// Extracts the `METRIC_*` string constants from the obs metric-name
/// source. The lexer keeps string literals as single tokens with their
/// surrounding quotes, so the value is unquoted here.
pub fn extract_metric_names(src: &str, into: &mut Extracted) {
    let lexed = crate::lexer::lex(src);
    let toks = &lexed.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("const")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text.starts_with("METRIC_"))
        {
            let name_tok = &toks[i + 1];
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct(b'=') && !toks[j].is_punct(b';') {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct(b'='))
                && toks.get(j + 1).is_some_and(|t| t.kind == TokKind::Str)
            {
                let raw = &toks[j + 1].text;
                let value = raw
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .unwrap_or(raw)
                    .to_string();
                into.metric_names.push(StrConst {
                    name: name_tok.text.clone(),
                    value,
                    line: name_tok.line,
                });
                i = j + 2;
                continue;
            }
        }
        i += 1;
    }
}

/// Parses the checked-in registry file into name → value maps.
#[derive(Debug, Default)]
pub struct Registry {
    /// `[opcodes]` section.
    pub opcodes: BTreeMap<String, i64>,
    /// `[error_codes]` section.
    pub error_codes: BTreeMap<String, i64>,
    /// `[protocol] version`.
    pub protocol_version: Option<i64>,
    /// `[wal_record_kinds]` section.
    pub wal_kinds: BTreeMap<String, i64>,
    /// `[wal] version`.
    pub wal_version: Option<i64>,
    /// `[store_section_kinds]` section.
    pub store_sections: BTreeMap<String, i64>,
    /// `[store] version`.
    pub store_version: Option<i64>,
    /// `[metric_names]` section (constant name → metric family name).
    pub metric_names: BTreeMap<String, String>,
}

impl Registry {
    /// Parses `docs/wire_registry.toml` text.
    pub fn parse(src: &str) -> Result<Self, String> {
        let doc = toml::parse(src)?;
        let mut reg = Registry::default();
        let int_map = |t: &toml::Table| -> BTreeMap<String, i64> {
            t.iter()
                .filter_map(|(k, v)| v.as_int().map(|i| (k.clone(), i)))
                .collect()
        };
        if let Some(t) = doc.table("opcodes") {
            reg.opcodes = int_map(t);
        }
        if let Some(t) = doc.table("error_codes") {
            reg.error_codes = int_map(t);
        }
        if let Some(t) = doc.table("wal_record_kinds") {
            reg.wal_kinds = int_map(t);
        }
        if let Some(t) = doc.table("store_section_kinds") {
            reg.store_sections = int_map(t);
        }
        if let Some(t) = doc.table("metric_names") {
            reg.metric_names = t
                .iter()
                .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())))
                .collect();
        }
        reg.store_version = doc
            .table("store")
            .and_then(|t| t.get("version"))
            .and_then(|v| v.as_int());
        reg.protocol_version = doc
            .table("protocol")
            .and_then(|t| t.get("version"))
            .and_then(|v| v.as_int());
        reg.wal_version = doc
            .table("wal")
            .and_then(|t| t.get("version"))
            .and_then(|v| v.as_int());
        Ok(reg)
    }
}

/// Diffs one extracted group against its registry section.
fn diff_group(
    group: &str,
    code: &[WireConst],
    registry: &BTreeMap<String, i64>,
    code_file: &str,
    registry_file: &str,
    out: &mut Vec<Finding>,
) {
    for c in code {
        match registry.get(&c.name) {
            None => out.push(Finding {
                file: code_file.to_string(),
                line: c.line,
                rule: "wire-registry".into(),
                message: format!(
                    "{group} constant {} = {} is not registered in {registry_file}; \
                     new wire constants must be added to the registry deliberately",
                    c.name, c.value
                ),
            }),
            Some(&reg_value) if reg_value != c.value => out.push(Finding {
                file: code_file.to_string(),
                line: c.line,
                rule: "wire-registry".into(),
                message: format!(
                    "{group} constant {} = {} in code but {reg_value} in {registry_file}; \
                     wire values are frozen — revert the renumbering or cut a new \
                     registry entry",
                    c.name, c.value
                ),
            }),
            Some(_) => {}
        }
    }
    for (name, value) in registry {
        if !code.iter().any(|c| &c.name == name) {
            out.push(Finding {
                file: registry_file.to_string(),
                line: 1,
                rule: "wire-registry".into(),
                message: format!(
                    "{group} constant {name} = {value} is registered but no longer \
                     exists in {code_file}; registered wire values must not be \
                     silently dropped"
                ),
            });
        }
    }
}

/// Diffs the extracted metric-name string constants against the
/// registry's `[metric_names]` section. Same contract as `diff_group`,
/// but the frozen values are strings (scrape-side family names) instead
/// of numbers.
fn diff_str_group(
    group: &str,
    code: &[StrConst],
    registry: &BTreeMap<String, String>,
    code_file: &str,
    registry_file: &str,
    out: &mut Vec<Finding>,
) {
    for c in code {
        match registry.get(&c.name) {
            None => out.push(Finding {
                file: code_file.to_string(),
                line: c.line,
                rule: "wire-registry".into(),
                message: format!(
                    "{group} constant {} = \"{}\" is not registered in {registry_file}; \
                     new metric family names must be added to the registry deliberately",
                    c.name, c.value
                ),
            }),
            Some(reg_value) if reg_value != &c.value => out.push(Finding {
                file: code_file.to_string(),
                line: c.line,
                rule: "wire-registry".into(),
                message: format!(
                    "{group} constant {} = \"{}\" in code but \"{reg_value}\" in \
                     {registry_file}; exported metric names are frozen — scrapers \
                     and dashboards key on them; revert the rename or register the \
                     new name deliberately",
                    c.name, c.value
                ),
            }),
            Some(_) => {}
        }
    }
    for (name, value) in registry {
        if !code.iter().any(|c| &c.name == name) {
            out.push(Finding {
                file: registry_file.to_string(),
                line: 1,
                rule: "wire-registry".into(),
                message: format!(
                    "{group} constant {name} = \"{value}\" is registered but no longer \
                     exists in {code_file}; registered metric names must not be \
                     silently dropped"
                ),
            });
        }
    }
}

/// Runs the full registry diff; findings are empty when code and registry
/// agree exactly. The store group is skipped when `store_file` is empty
/// (a workspace without a declared store format source), and likewise the
/// metric-name group when `obs_file` is empty.
pub fn diff(
    extracted: &Extracted,
    registry: &Registry,
    protocol_file: &str,
    wal_file: &str,
    store_file: &str,
    obs_file: &str,
    registry_file: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    if extracted.opcodes.is_empty() {
        out.push(Finding {
            file: protocol_file.to_string(),
            line: 1,
            rule: "wire-registry".into(),
            message: "no opcode constants extracted from `mod opcode` — extraction is \
                      broken or the module moved; update crates/lint/src/registry.rs"
                .into(),
        });
    }
    if extracted.error_codes.is_empty() {
        out.push(Finding {
            file: protocol_file.to_string(),
            line: 1,
            rule: "wire-registry".into(),
            message: "no error codes extracted from WireError::code() — extraction is \
                      broken or the method moved; update crates/lint/src/registry.rs"
                .into(),
        });
    }
    diff_group(
        "opcode",
        &extracted.opcodes,
        &registry.opcodes,
        protocol_file,
        registry_file,
        &mut out,
    );
    diff_group(
        "error-code",
        &extracted.error_codes,
        &registry.error_codes,
        protocol_file,
        registry_file,
        &mut out,
    );
    diff_group(
        "wal-record-kind",
        &extracted.wal_kinds,
        &registry.wal_kinds,
        wal_file,
        registry_file,
        &mut out,
    );
    if !store_file.is_empty() {
        if extracted.store_sections.is_empty() {
            out.push(Finding {
                file: store_file.to_string(),
                line: 1,
                rule: "wire-registry".into(),
                message: "no SECTION_* constants extracted from the store format source — \
                          extraction is broken or the constants moved; update \
                          crates/lint/src/registry.rs"
                    .into(),
            });
        }
        diff_group(
            "store-section",
            &extracted.store_sections,
            &registry.store_sections,
            store_file,
            registry_file,
            &mut out,
        );
    }
    if !obs_file.is_empty() {
        if extracted.metric_names.is_empty() {
            out.push(Finding {
                file: obs_file.to_string(),
                line: 1,
                rule: "wire-registry".into(),
                message: "no METRIC_* constants extracted from the obs metric-name source — \
                          extraction is broken or the constants moved; update \
                          crates/lint/src/registry.rs"
                    .into(),
            });
        }
        diff_str_group(
            "metric-name",
            &extracted.metric_names,
            &registry.metric_names,
            obs_file,
            registry_file,
            &mut out,
        );
    }
    let mut versions = vec![
        (
            "protocol version",
            extracted.protocol_version.as_ref(),
            registry.protocol_version,
            protocol_file,
        ),
        (
            "WAL format version",
            extracted.wal_version.as_ref(),
            registry.wal_version,
            wal_file,
        ),
    ];
    if !store_file.is_empty() {
        versions.push((
            "store artifact format version",
            extracted.store_version.as_ref(),
            registry.store_version,
            store_file,
        ));
    }
    for (what, code_v, reg_v, file) in versions {
        match (code_v, reg_v) {
            (Some(c), Some(r)) if c.value != r => out.push(Finding {
                file: file.to_string(),
                line: c.line,
                rule: "wire-registry".into(),
                message: format!(
                    "{what} is {} in code but {r} in {registry_file}; version bumps \
                     must update the registry in the same change",
                    c.value
                ),
            }),
            (Some(_), Some(_)) => {}
            (Some(c), None) => out.push(Finding {
                file: file.to_string(),
                line: c.line,
                rule: "wire-registry".into(),
                message: format!("{what} is not recorded in {registry_file}"),
            }),
            (None, _) => out.push(Finding {
                file: file.to_string(),
                line: 1,
                rule: "wire-registry".into(),
                message: format!(
                    "{what} constant not found in {file} — extraction is broken or \
                     the constant moved; update crates/lint/src/registry.rs"
                ),
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROTO: &str = "
pub const VERSION: u16 = 1;
pub mod opcode {
    pub const PING: u8 = 0x01;
    pub const QUERY: u8 = 0x02;
}
impl WireError {
    pub fn code(&self) -> u8 {
        match self {
            WireError::StaleIndex => 2,
            WireError::Malformed { .. } => 16,
        }
    }
}
";

    const WAL: &str = "
pub const WAL_VERSION: u32 = 1;
const KIND_INSERT_VERTEX: u8 = 1;
const KIND_INSERT_EDGE: u8 = 2;
";

    const STORE: &str = "
pub const FORMAT_VERSION: u32 = 3;
pub const SECTION_GRAPH: u32 = 1;
pub const SECTION_LEVELS: u32 = 2;
";

    const OBS: &str = "
pub const METRIC_NET_QUERIES_TOTAL: &str = \"islabel_net_queries_total\";
pub const METRIC_WAL_APPENDS_TOTAL: &str = \"islabel_wal_appends_total\";
";

    fn extract_both() -> Extracted {
        let mut e = extract_protocol(PROTO);
        extract_wal(WAL, &mut e);
        extract_store(STORE, &mut e);
        extract_metric_names(OBS, &mut e);
        e
    }

    #[test]
    fn extraction_finds_everything() {
        let e = extract_both();
        assert_eq!(
            e.opcodes
                .iter()
                .map(|c| (c.name.as_str(), c.value))
                .collect::<Vec<_>>(),
            vec![("PING", 1), ("QUERY", 2)]
        );
        assert_eq!(
            e.error_codes
                .iter()
                .map(|c| (c.name.as_str(), c.value))
                .collect::<Vec<_>>(),
            vec![("StaleIndex", 2), ("Malformed", 16)]
        );
        assert_eq!(e.protocol_version.as_ref().unwrap().value, 1);
        assert_eq!(e.wal_version.as_ref().unwrap().value, 1);
        assert_eq!(e.wal_kinds.len(), 2);
        assert_eq!(e.store_version.as_ref().unwrap().value, 3);
        assert_eq!(
            e.store_sections
                .iter()
                .map(|c| (c.name.as_str(), c.value))
                .collect::<Vec<_>>(),
            vec![("SECTION_GRAPH", 1), ("SECTION_LEVELS", 2)]
        );
        assert_eq!(
            e.metric_names
                .iter()
                .map(|c| (c.name.as_str(), c.value.as_str()))
                .collect::<Vec<_>>(),
            vec![
                ("METRIC_NET_QUERIES_TOTAL", "islabel_net_queries_total"),
                ("METRIC_WAL_APPENDS_TOTAL", "islabel_wal_appends_total"),
            ]
        );
    }

    const REG: &str = "
[protocol]
version = 1
[opcodes]
PING = 0x01
QUERY = 0x02
[error_codes]
StaleIndex = 2
Malformed = 16
[wal]
version = 1
[wal_record_kinds]
KIND_INSERT_VERTEX = 1
KIND_INSERT_EDGE = 2
[store]
version = 3
[store_section_kinds]
SECTION_GRAPH = 1
SECTION_LEVELS = 2
[metric_names]
METRIC_NET_QUERIES_TOTAL = \"islabel_net_queries_total\"
METRIC_WAL_APPENDS_TOTAL = \"islabel_wal_appends_total\"
";

    #[test]
    fn agreement_is_clean() {
        let e = extract_both();
        let r = Registry::parse(REG).unwrap();
        let d = diff(&e, &r, "p.rs", "w.rs", "s.rs", "o.rs", "reg.toml");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn store_group_is_skipped_without_a_store_file() {
        let mut e = extract_protocol(PROTO);
        extract_wal(WAL, &mut e);
        extract_metric_names(OBS, &mut e);
        let r = Registry::parse(REG).unwrap();
        // No store constants extracted, but the registry lists them: that
        // is only a finding when a store source is declared.
        assert!(diff(&e, &r, "p.rs", "w.rs", "", "o.rs", "reg.toml").is_empty());
        assert!(!diff(&e, &r, "p.rs", "w.rs", "s.rs", "o.rs", "reg.toml").is_empty());
    }

    #[test]
    fn metric_group_is_skipped_without_an_obs_file() {
        let mut e = extract_protocol(PROTO);
        extract_wal(WAL, &mut e);
        extract_store(STORE, &mut e);
        let r = Registry::parse(REG).unwrap();
        // Same skip contract as the store group: registered metric names
        // with no extraction are only a finding when an obs source is
        // declared.
        assert!(diff(&e, &r, "p.rs", "w.rs", "s.rs", "", "reg.toml").is_empty());
        assert!(!diff(&e, &r, "p.rs", "w.rs", "s.rs", "o.rs", "reg.toml").is_empty());
    }

    #[test]
    fn store_renumbering_is_caught() {
        let e = extract_both();
        let r = Registry::parse(&REG.replace("SECTION_LEVELS = 2", "SECTION_LEVELS = 7")).unwrap();
        let d = diff(&e, &r, "p.rs", "w.rs", "s.rs", "o.rs", "reg.toml");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("SECTION_LEVELS"));
        assert!(d[0].message.contains('2') && d[0].message.contains('7'));

        let r = Registry::parse(&REG.replace("version = 3", "version = 4")).unwrap();
        let d = diff(&e, &r, "p.rs", "w.rs", "s.rs", "o.rs", "reg.toml");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("store artifact format version"));
    }

    #[test]
    fn renumbering_is_caught_with_both_values() {
        let e = extract_both();
        let r = Registry::parse(&REG.replace("QUERY = 0x02", "QUERY = 0x09")).unwrap();
        let d = diff(&e, &r, "p.rs", "w.rs", "s.rs", "o.rs", "reg.toml");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("QUERY"));
        assert!(d[0].message.contains('2') && d[0].message.contains('9'));
    }

    #[test]
    fn metric_rename_is_caught_with_both_names() {
        let e = extract_both();
        let r =
            Registry::parse(&REG.replace("islabel_net_queries_total", "islabel_net_query_count"))
                .unwrap();
        let d = diff(&e, &r, "p.rs", "w.rs", "s.rs", "o.rs", "reg.toml");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("islabel_net_queries_total"));
        assert!(d[0].message.contains("islabel_net_query_count"));
    }

    #[test]
    fn unregistered_and_dropped_constants_are_caught() {
        let e = extract_both();
        let r = Registry::parse(&REG.replace("PING = 0x01\n", "")).unwrap();
        let d = diff(&e, &r, "p.rs", "w.rs", "s.rs", "o.rs", "reg.toml");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("not registered"));

        let r = Registry::parse(&REG.replace("[error_codes]", "[error_codes]\nGone = 9")).unwrap();
        let d = diff(&e, &r, "p.rs", "w.rs", "s.rs", "o.rs", "reg.toml");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("no longer exists"));
    }

    #[test]
    fn unregistered_and_dropped_metric_names_are_caught() {
        let e = extract_both();
        let r = Registry::parse(&REG.replace(
            "METRIC_NET_QUERIES_TOTAL = \"islabel_net_queries_total\"\n",
            "",
        ))
        .unwrap();
        let d = diff(&e, &r, "p.rs", "w.rs", "s.rs", "o.rs", "reg.toml");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("not registered"));

        let r = Registry::parse(&REG.replace(
            "[metric_names]",
            "[metric_names]\nMETRIC_GONE = \"islabel_gone\"",
        ))
        .unwrap();
        let d = diff(&e, &r, "p.rs", "w.rs", "s.rs", "o.rs", "reg.toml");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("no longer exists"));
    }
}
