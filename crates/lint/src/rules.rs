//! The lint rules and the per-file analysis context they run over.
//!
//! Every rule reports [`Finding`]s with a stable rule name, a file, a
//! 1-based line, and a message. Suppression is per-line and explicit:
//! a `// lint:allow(<rule>, <reason>)` comment on the offending line (or
//! directly above it) silences exactly one line's findings for that rule
//! — and the reason is mandatory, because an invariant exception without
//! a recorded justification is how invariants rot. Unused or reasonless
//! allows are themselves findings, so the escape hatch cannot drift.

use crate::config::AllocZone;
use crate::lexer::{Lexed, Tok, TokKind};

/// One diagnostic: `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule name (`panic`, `alloc`, `ordering`, `unsafe`,
    /// `wire-registry`, `allow-hygiene`).
    pub rule: String,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `lint:allow(rule, reason)` escape, bound to the line of code
/// it covers.
#[derive(Debug)]
pub struct Allow {
    /// The rule name inside the parentheses.
    pub rule: String,
    /// The justification after the comma (may be empty — that is itself
    /// reported).
    pub reason: String,
    /// The line of the comment that carries the allow.
    pub comment_line: u32,
    /// The code line this allow covers.
    pub target_line: u32,
    /// Set when some finding was suppressed by this allow.
    pub used: std::cell::Cell<bool>,
}

/// A `fn` item's span in the token stream and the source.
#[derive(Debug)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub tok_start: usize,
    /// Token index one past the body's closing brace.
    pub tok_end: usize,
}

/// Everything the rules need to know about one file.
#[derive(Debug)]
pub struct FileCtx {
    /// Workspace-relative path.
    pub path: String,
    /// The token stream and comments.
    pub lexed: Lexed,
    /// Per-token flag: inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// All `fn` items (including nested and test ones).
    pub fns: Vec<FnSpan>,
    /// Parsed `lint:allow` escapes.
    pub allows: Vec<Allow>,
}

impl FileCtx {
    /// Lexes and indexes one file.
    pub fn new(path: String, src: &str) -> Self {
        let lexed = crate::lexer::lex(src);
        let in_test = mark_cfg_test(&lexed.toks);
        let fns = find_fns(&lexed.toks);
        let allows = parse_allows(&lexed);
        Self {
            path,
            lexed,
            in_test,
            fns,
            allows,
        }
    }

    /// Reports `finding` unless a matching allow covers its line (in
    /// which case the allow is marked used).
    fn push(&self, out: &mut Vec<Finding>, rule: &str, line: u32, message: String) {
        for allow in &self.allows {
            if allow.rule == rule && allow.target_line == line && !allow.reason.is_empty() {
                allow.used.set(true);
                return;
            }
        }
        out.push(Finding {
            file: self.path.clone(),
            line,
            rule: rule.to_string(),
            message,
        });
    }

    /// True when `line` (or an adjacent preceding comment run, up to
    /// `window` non-blank lines back, never crossing a `fn` boundary)
    /// carries a comment containing `needle`.
    fn has_justifying_comment(&self, line: u32, needle: &str) -> bool {
        if self
            .lexed
            .comments_on_line(line)
            .any(|c| c.text.contains(needle))
        {
            return true;
        }
        let fn_lines: Vec<u32> = self
            .fns
            .iter()
            .filter_map(|f| self.lexed.toks.get(f.tok_start).map(|t| t.line))
            .collect();
        let mut l = line;
        for _ in 0..8 {
            if l <= 1 {
                break;
            }
            l -= 1;
            if fn_lines.contains(&l) {
                break;
            }
            let has_code = self.lexed.line_has_code(l);
            let has_comment = self.lexed.line_has_comment(l);
            if !has_code && !has_comment {
                break; // blank line: paragraph boundary
            }
            if self
                .lexed
                .comments_on_line(l)
                .any(|c| c.text.contains(needle))
            {
                return true;
            }
        }
        false
    }
}

/// Marks tokens inside `#[cfg(test)]` items (mods, fns, impls): the
/// production-code rules skip them — tests are allowed to panic.
fn mark_cfg_test(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let attr = toks[i].is_punct(b'#')
            && toks[i + 1].is_punct(b'[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct(b'(')
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(b')')
            && toks[i + 6].is_punct(b']');
        if !attr {
            i += 1;
            continue;
        }
        // Skip the attributed item: to the matching `}` of its first
        // brace, or to a `;` if one comes first (e.g. `use` gated items).
        let mut j = i + 7;
        let mut depth = 0usize;
        let mut opened = false;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct(b'{') => {
                    depth += 1;
                    opened = true;
                }
                TokKind::Punct(b'}') => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        j += 1;
                        break;
                    }
                }
                TokKind::Punct(b';') if !opened => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for slot in mask.iter_mut().take(j).skip(i) {
            *slot = true;
        }
        i = j;
    }
    mask
}

/// Finds every `fn name … { … }` span (body brace-matched).
fn find_fns(toks: &[Tok]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            // Body: first `{` after the signature, brace-matched. Trait
            // method *declarations* end in `;` before any `{` — skip.
            let mut j = i + 2;
            let mut body_start = None;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct(b'{') => {
                        body_start = Some(j);
                        break;
                    }
                    TokKind::Punct(b';') => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(start) = body_start {
                let mut depth = 0usize;
                let mut k = start;
                while k < toks.len() {
                    match toks[k].kind {
                        TokKind::Punct(b'{') => depth += 1,
                        TokKind::Punct(b'}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                out.push(FnSpan {
                    name,
                    tok_start: i,
                    tok_end: (k + 1).min(toks.len()),
                });
            }
        }
        i += 1;
    }
    out
}

/// Extracts `lint:allow(rule, reason)` escapes from the comments. The
/// escape covers its own line when it trails code, otherwise the next
/// code-bearing line below the comment run.
fn parse_allows(lexed: &Lexed) -> Vec<Allow> {
    let mut out = Vec::new();
    let max_line = lexed
        .toks
        .iter()
        .map(|t| t.line)
        .chain(lexed.comments.iter().map(|c| c.line_end))
        .max()
        .unwrap_or(0);
    for c in &lexed.comments {
        let Some((rule, reason)) = parse_allow_text(&c.text) else {
            continue;
        };
        let target_line = if lexed.line_has_code(c.line_start) {
            c.line_start
        } else {
            // First code line after the comment run.
            let mut l = c.line_end + 1;
            while l <= max_line && !lexed.line_has_code(l) {
                l += 1;
            }
            l
        };
        out.push(Allow {
            rule,
            reason,
            comment_line: c.line_start,
            target_line,
            used: std::cell::Cell::new(false),
        });
    }
    out
}

/// Parses `lint:allow(rule, reason)` out of one comment's text.
fn parse_allow_text(text: &str) -> Option<(String, String)> {
    let start = text.find("lint:allow(")?;
    let body = &text[start + "lint:allow(".len()..];
    let end = body.rfind(')')?;
    let body = &body[..end];
    match body.split_once(',') {
        Some((rule, reason)) => Some((rule.trim().to_string(), reason.trim().to_string())),
        None => Some((body.trim().to_string(), String::new())),
    }
}

/// Identifiers that may legitimately precede `[` without forming an index
/// expression (array literals/types after a keyword).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "ref", "return", "break", "in", "as", "const", "static", "else", "match", "if", "while",
    "dyn", "move", "box", "for", "where", "impl", "type", "let", "use", "pub", "fn", "unsafe",
    "await", "yield",
];

/// Macro names whose invocation panics.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Rule `panic`: no panicking constructs in the zone file's non-test
/// code — `.unwrap()` / `.expect()`, panicking macros, slice indexing.
pub fn rule_panic(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.toks;
    for i in 0..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &toks[i];
        // `.unwrap(` / `.expect(`
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].is_punct(b'.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct(b'('))
        {
            ctx.push(
                out,
                "panic",
                t.line,
                format!(
                    ".{}() can panic in a panic-free zone; return a typed error \
                     or add `// lint:allow(panic, reason)`",
                    t.text
                ),
            );
        }
        // `panic!(`, `unreachable!(`, ...
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct(b'!'))
        {
            ctx.push(
                out,
                "panic",
                t.line,
                format!(
                    "{}! panics in a panic-free zone; return a typed error \
                     or add `// lint:allow(panic, reason)`",
                    t.text
                ),
            );
        }
        // Slice/array indexing `expr[…]`: a `[` directly after an
        // identifier, `)`, or `]` is an index expression (keywords that
        // start array literals/types are excluded).
        if t.is_punct(b'[') && i > 0 {
            let prev = &toks[i - 1];
            let is_index = match prev.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokKind::Punct(b')') | TokKind::Punct(b']') => true,
                _ => false,
            };
            if is_index {
                ctx.push(
                    out,
                    "panic",
                    t.line,
                    format!(
                        "indexing `{}[…]` can panic on out-of-bounds; use .get()/\
                         split_at or add `// lint:allow(panic, reason)`",
                        prev.text
                    ),
                );
            }
        }
    }
}

/// Allocation constructs banned inside alloc-free functions, as
/// `(receiver-path, method)` pairs: `Some(path)` matches `path::method`,
/// `None` matches `.method(` calls.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("Arc", "new"),
    ("Rc", "new"),
    ("String", "new"),
    ("String", "from"),
    ("HashMap", "new"),
    ("HashSet", "new"),
    ("BTreeMap", "new"),
    ("VecDeque", "new"),
];

const ALLOC_METHODS: &[&str] = &["to_vec", "collect", "clone", "to_string", "to_owned"];

const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Rule `alloc`: no allocation in the bodies of the zone's functions.
pub fn rule_alloc(ctx: &FileCtx, zone: &AllocZone, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.toks;
    let mut covered = vec![false; toks.len()];
    let mut seen_any = false;
    for f in &ctx.fns {
        if zone.functions.iter().any(|n| n == &f.name) {
            seen_any = true;
            for slot in covered.iter_mut().take(f.tok_end).skip(f.tok_start) {
                *slot = true;
            }
        }
    }
    if !seen_any {
        out.push(Finding {
            file: ctx.path.clone(),
            line: 1,
            rule: "alloc".into(),
            message: format!(
                "lint.toml lists alloc-free functions {:?} but none were found in this file \
                 (stale zone config?)",
                zone.functions
            ),
        });
        return;
    }
    for i in 0..toks.len() {
        if !covered[i] || ctx.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `Type::method` constructors.
        if toks.get(i + 1).is_some_and(|a| a.is_punct(b':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(b':'))
        {
            if let Some(m) = toks.get(i + 3) {
                if ALLOC_PATHS
                    .iter()
                    .any(|(p, me)| t.text == *p && m.text == *me)
                {
                    ctx.push(
                        out,
                        "alloc",
                        t.line,
                        format!(
                            "{}::{} allocates inside an alloc-free function; hoist it to \
                             construction/scratch or add `// lint:allow(alloc, reason)`",
                            t.text, m.text
                        ),
                    );
                }
            }
        }
        // `.method(` calls.
        if ALLOC_METHODS.contains(&t.text.as_str())
            && i > 0
            && toks[i - 1].is_punct(b'.')
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is_punct(b'(') || n.is_punct(b':'))
        {
            ctx.push(
                out,
                "alloc",
                t.line,
                format!(
                    ".{}() allocates inside an alloc-free function; reuse scratch \
                     buffers or add `// lint:allow(alloc, reason)`",
                    t.text
                ),
            );
        }
        // `vec![…]` / `format!(…)`.
        if ALLOC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct(b'!'))
        {
            ctx.push(
                out,
                "alloc",
                t.line,
                format!(
                    "{}! allocates inside an alloc-free function; reuse scratch \
                     buffers or add `// lint:allow(alloc, reason)`",
                    t.text
                ),
            );
        }
    }
}

/// Atomic `Ordering` variants (the `cmp::Ordering` variants are distinct,
/// so sort comparators never trip this rule).
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Rule `ordering`: every atomic `Ordering::X` use needs an adjacent
/// `// ordering:` comment saying why that ordering is sufficient.
pub fn rule_ordering(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.toks;
    for i in 0..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.is_ident("Ordering")
            && toks.get(i + 1).is_some_and(|a| a.is_punct(b':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(b':'))
            && toks
                .get(i + 3)
                .is_some_and(|v| ATOMIC_ORDERINGS.contains(&v.text.as_str()))
        {
            let variant = &toks[i + 3].text;
            if !ctx.has_justifying_comment(t.line, "ordering:") {
                ctx.push(
                    out,
                    "ordering",
                    t.line,
                    format!(
                        "Ordering::{variant} without an adjacent `// ordering:` comment \
                         justifying why this memory ordering is sufficient"
                    ),
                );
            }
        }
    }
}

/// Rule `unsafe`: every `unsafe` keyword needs an adjacent `// SAFETY:`
/// comment, and crate roots listed in lint.toml must forbid unsafe code
/// outright.
pub fn rule_unsafe(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for t in &ctx.lexed.toks {
        if t.is_ident("unsafe") && !ctx.has_justifying_comment(t.line, "SAFETY:") {
            ctx.push(
                out,
                "unsafe",
                t.line,
                "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
            );
        }
    }
}

/// Rule `unsafe` (confinement): `unsafe` may only appear in the files
/// lint.toml declares as the unsafe zone (`[unsafe] allowed_files`). In
/// every other file a `// SAFETY:` comment does not help — the fix is to
/// move the code into the zone or extend the zone deliberately.
pub fn rule_unsafe_confined(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for t in &ctx.lexed.toks {
        if t.is_ident("unsafe") {
            ctx.push(
                out,
                "unsafe",
                t.line,
                "`unsafe` outside the declared unsafe zone ([unsafe] allowed_files in \
                 lint.toml); move the code into the zone or extend the zone deliberately"
                    .to_string(),
            );
        }
    }
}

/// Checks that a crate-root file opens with `#![forbid(unsafe_code)]`.
pub fn check_forbid_unsafe(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.toks;
    let mut found = false;
    for i in 0..toks.len().saturating_sub(6) {
        if toks[i].is_punct(b'#')
            && toks[i + 1].is_punct(b'!')
            && toks[i + 2].is_punct(b'[')
            && toks[i + 3].is_ident("forbid")
            && toks[i + 4].is_punct(b'(')
            && toks[i + 5].is_ident("unsafe_code")
        {
            found = true;
            break;
        }
    }
    if !found {
        out.push(Finding {
            file: ctx.path.clone(),
            line: 1,
            rule: "unsafe".into(),
            message: "crate root is listed in lint.toml [unsafe] forbid_crate_roots but does \
                      not carry #![forbid(unsafe_code)]"
                .into(),
        });
    }
}

/// Reports allow-hygiene findings: reasonless allows, and allows that
/// suppressed nothing (for the rules that ran on this file).
pub fn rule_allow_hygiene(ctx: &FileCtx, active_rules: &[&str], out: &mut Vec<Finding>) {
    for allow in &ctx.allows {
        if !active_rules.contains(&allow.rule.as_str()) {
            continue;
        }
        if allow.reason.is_empty() {
            out.push(Finding {
                file: ctx.path.clone(),
                line: allow.comment_line,
                rule: "allow-hygiene".into(),
                message: format!(
                    "lint:allow({}) has no reason — escapes must record why the \
                     invariant does not apply",
                    allow.rule
                ),
            });
        } else if !allow.used.get() {
            out.push(Finding {
                file: ctx.path.clone(),
                line: allow.comment_line,
                rule: "allow-hygiene".into(),
                message: format!(
                    "unused lint:allow({}) — the line it covers no longer violates \
                     the rule; remove the escape",
                    allow.rule
                ),
            });
        }
    }
}

/// Comment adjacency probe used by rules and tests.
pub fn has_adjacent_comment(ctx: &FileCtx, line: u32, needle: &str) -> bool {
    ctx.has_justifying_comment(line, needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::new("test.rs".into(), src)
    }

    #[test]
    fn cfg_test_items_are_masked() {
        let c =
            ctx("fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }");
        let mut out = Vec::new();
        rule_panic(&c, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn fn_spans_cover_nested_bodies() {
        let c = ctx("fn outer() { fn inner() {} if x { y() } }\nfn other() {}");
        assert_eq!(c.fns.len(), 3);
        assert_eq!(c.fns[0].name, "outer");
        assert!(c.fns[0].tok_end > c.fns[1].tok_end, "outer encloses inner");
    }

    #[test]
    fn allow_with_reason_suppresses_and_is_used() {
        let c = ctx("fn f() {\n    // lint:allow(panic, index is masked to table length)\n    let x = t[i];\n}");
        let mut out = Vec::new();
        rule_panic(&c, &mut out);
        assert!(out.is_empty(), "{out:?}");
        assert!(c.allows[0].used.get());
        let mut hy = Vec::new();
        rule_allow_hygiene(&c, &["panic"], &mut hy);
        assert!(hy.is_empty(), "{hy:?}");
    }

    #[test]
    fn reasonless_allow_is_a_finding() {
        let c = ctx("fn f() {\n    let x = t[i]; // lint:allow(panic)\n}");
        let mut out = Vec::new();
        rule_panic(&c, &mut out);
        assert_eq!(out.len(), 1, "reasonless allow must not suppress: {out:?}");
        let mut hy = Vec::new();
        rule_allow_hygiene(&c, &["panic"], &mut hy);
        assert_eq!(hy.len(), 1, "{hy:?}");
        assert!(hy[0].message.contains("no reason"));
    }

    #[test]
    fn unused_allow_is_a_finding() {
        let c = ctx("fn f() {\n    // lint:allow(panic, stale reason)\n    let x = safe();\n}");
        let mut out = Vec::new();
        rule_panic(&c, &mut out);
        rule_allow_hygiene(&c, &["panic"], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("unused"));
    }

    #[test]
    fn indexing_heuristic_spares_types_attrs_and_macros() {
        let src = "fn f(a: [u8; 4], b: &[u8]) -> Vec<[u8; 2]> {\n\
                   #[derive(Debug)]\n\
                   struct X;\n\
                   let v = vec![0u8; 4];\n\
                   let w = &mut [1, 2];\n\
                   v\n}";
        let c = ctx(src);
        let mut out = Vec::new();
        rule_panic(&c, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn indexing_is_flagged() {
        let c = ctx("fn f() { let x = buf[0]; let y = call()[1]; }");
        let mut out = Vec::new();
        rule_panic(&c, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn ordering_comment_windows() {
        let covered = "fn f() {\n\
            // ordering: relaxed — independent counter\n\
            c.fetch_add(1, Ordering::Relaxed);\n\
            d.load(Ordering::SeqCst); // ordering: gate flag\n\
        }";
        let c = ctx(covered);
        let mut out = Vec::new();
        rule_ordering(&c, &mut out);
        assert!(out.is_empty(), "{out:?}");

        let uncovered = "fn f() { c.fetch_add(1, Ordering::Relaxed); }";
        let c = ctx(uncovered);
        let mut out = Vec::new();
        rule_ordering(&c, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn cmp_ordering_is_ignored() {
        let c = ctx("fn f() { match a.cmp(&b) { Ordering::Less => {} _ => {} } }");
        let mut out = Vec::new();
        rule_ordering(&c, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn alloc_zone_scopes_to_named_functions() {
        let src = "fn build() -> Vec<u32> { Vec::new() }\n\
                   fn kernel(s: &mut S) { s.buf.push(1); let d = x.clone(); }";
        let c = ctx(src);
        let zone = AllocZone {
            path: "test.rs".into(),
            functions: vec!["kernel".into()],
        };
        let mut out = Vec::new();
        rule_alloc(&c, &zone, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("clone"));
    }

    #[test]
    fn stale_alloc_zone_is_reported() {
        let c = ctx("fn other() {}");
        let zone = AllocZone {
            path: "test.rs".into(),
            functions: vec!["gone".into()],
        };
        let mut out = Vec::new();
        rule_alloc(&c, &zone, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("stale"));
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let c = ctx("fn f() { unsafe { g() } }");
        let mut out = Vec::new();
        rule_unsafe(&c, &mut out);
        assert_eq!(out.len(), 1);

        let c = ctx("fn f() {\n    // SAFETY: g has no preconditions here\n    unsafe { g() }\n}");
        let mut out = Vec::new();
        rule_unsafe(&c, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn forbid_attr_detection() {
        let c = ctx("#![forbid(unsafe_code)]\nfn f() {}");
        let mut out = Vec::new();
        check_forbid_unsafe(&c, &mut out);
        assert!(out.is_empty());
        let c = ctx("fn f() {}");
        let mut out = Vec::new();
        check_forbid_unsafe(&c, &mut out);
        assert_eq!(out.len(), 1);
    }
}
