#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! `islabel-lint`: a codebase-aware static analysis pass for this
//! workspace's hand-enforced invariants.
//!
//! The workspace carries invariants that `rustc` and `clippy` cannot see:
//! the wire decoder must never panic on untrusted bytes, the dense query
//! kernel must not allocate per query, wire error codes are frozen once
//! shipped, atomic memory orderings need written justification, and
//! `unsafe` needs a `// SAFETY:` contract. Until now those lived in
//! review discipline and a handful of proptest/counting-allocator tests;
//! this crate turns them into machine-checked rules gated in CI.
//!
//! Design constraints, in order:
//! - **Zero dependencies.** The analyzer is a hand-rolled token scanner
//!   (`lexer`), not a `syn` AST walk — the build environment is offline
//!   and the vendor tree stays small. The token level is enough for every
//!   rule here because the rules are about *lexical* facts (a call name,
//!   an adjacent comment, a const value), not types.
//! - **Config over code.** Which files are in which zone is declared in
//!   the repo-root `lint.toml` ([`config`]), so the zone map is reviewable
//!   and extendable without recompiling the analyzer.
//! - **Escapes carry reasons.** `// lint:allow(rule, reason)` suppresses
//!   one line; a missing reason or an unused escape is itself a finding
//!   ([`rules::rule_allow_hygiene`]).
//!
//! Run it as `cargo run -p islabel-lint --` from anywhere in the repo;
//! exit status is nonzero when any finding is reported. See the README
//! "Static analysis" section for the rule table.

pub mod config;
pub mod lexer;
pub mod registry;
pub mod rules;
pub mod toml;

pub use config::LintConfig;
pub use rules::Finding;

use std::path::{Path, PathBuf};

/// Recursively collects `.rs` files under `dir`, returning
/// workspace-relative paths with `/` separators.
fn walk_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let ty = entry
            .file_type()
            .map_err(|e| format!("file_type {}: {e}", path.display()))?;
        if ty.is_dir() {
            walk_rs(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip_prefix {}: {e}", path.display()))?;
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

/// Runs every rule over the workspace rooted at `root` (the directory
/// holding `lint.toml`). Returns all findings, sorted by file then line.
pub fn run(root: &Path, cfg: &LintConfig) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    for r in &cfg.roots {
        let dir = root.join(r);
        if dir.is_dir() {
            walk_rs(root, &dir, &mut files)?;
        }
    }
    files.sort();
    files.retain(|f| !cfg.is_excluded(f));

    let mut findings = Vec::new();

    for rel in &files {
        let src =
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("read {rel}: {e}"))?;
        findings.extend(check_file(rel, &src, cfg));
    }

    // Zones must point at real files: a renamed module silently dropping
    // out of its zone would defeat the whole gate.
    for zoned in cfg
        .panic_free
        .iter()
        .chain(cfg.alloc_free.iter().map(|z| &z.path))
        .chain(cfg.forbid_unsafe_roots.iter())
        .chain(cfg.unsafe_allowed_files.iter())
    {
        if !files.iter().any(|f| f == zoned) {
            findings.push(Finding {
                file: "lint.toml".into(),
                line: 1,
                rule: "zone-config".into(),
                message: format!(
                    "zoned file {zoned} does not exist under the scanned roots; \
                     update lint.toml to follow the rename"
                ),
            });
        }
    }

    findings.extend(registry_findings(root, cfg)?);

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    Ok(findings)
}

/// Runs the per-file rules on one source file (no registry diff). Public
/// so fixture tests can lint single files without a workspace.
pub fn check_file(rel: &str, src: &str, cfg: &LintConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let ctx = rules::FileCtx::new(rel.to_string(), src);
    let mut active: Vec<&str> = Vec::new();

    if cfg.panic_free.iter().any(|p| p == rel) {
        active.push("panic");
        rules::rule_panic(&ctx, &mut findings);
    }
    for zone in cfg.alloc_free.iter().filter(|z| z.path == rel) {
        if !active.contains(&"alloc") {
            active.push("alloc");
        }
        rules::rule_alloc(&ctx, zone, &mut findings);
    }
    if cfg.in_ordering_zone(rel) {
        active.push("ordering");
        rules::rule_ordering(&ctx, &mut findings);
    }
    // Unsafe hygiene is workspace-wide: any unsafe block anywhere needs a
    // SAFETY contract (the workspace denies unsafe_code by default, so
    // the few sites that opt in are exactly the ones worth documenting),
    // and outside the declared unsafe zone `unsafe` is not allowed at all
    // even with one — confinement is what keeps the zone auditable.
    active.push("unsafe");
    rules::rule_unsafe(&ctx, &mut findings);
    if !cfg.unsafe_allowed_files.is_empty() && !cfg.unsafe_allowed_files.iter().any(|p| p == rel) {
        rules::rule_unsafe_confined(&ctx, &mut findings);
    }
    if cfg.forbid_unsafe_roots.iter().any(|p| p == rel) {
        rules::check_forbid_unsafe(&ctx, &mut findings);
    }

    rules::rule_allow_hygiene(&ctx, &active, &mut findings);
    findings
}

/// Extracts wire constants from the configured sources and diffs them
/// against the checked-in registry.
pub fn registry_findings(root: &Path, cfg: &LintConfig) -> Result<Vec<Finding>, String> {
    if cfg.registry_path.is_empty() {
        return Ok(Vec::new());
    }
    let read = |rel: &str| -> Result<String, String> {
        std::fs::read_to_string(root.join(rel)).map_err(|e| format!("read {rel}: {e}"))
    };
    let proto_src = read(&cfg.protocol_path)?;
    let wal_src = read(&cfg.wal_path)?;
    let reg_src = read(&cfg.registry_path)?;
    let mut extracted = registry::extract_protocol(&proto_src);
    registry::extract_wal(&wal_src, &mut extracted);
    if !cfg.store_path.is_empty() {
        let store_src = read(&cfg.store_path)?;
        registry::extract_store(&store_src, &mut extracted);
    }
    if !cfg.obs_path.is_empty() {
        let obs_src = read(&cfg.obs_path)?;
        registry::extract_metric_names(&obs_src, &mut extracted);
    }
    let reg =
        registry::Registry::parse(&reg_src).map_err(|e| format!("{}: {e}", cfg.registry_path))?;
    Ok(registry::diff(
        &extracted,
        &reg,
        &cfg.protocol_path,
        &cfg.wal_path,
        &cfg.store_path,
        &cfg.obs_path,
        &cfg.registry_path,
    ))
}

/// Walks upward from `start` to the directory containing `lint.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
