//! A minimal TOML-subset parser — just enough for `lint.toml` and
//! `docs/wire_registry.toml`, with no dependencies.
//!
//! Supported: `[table]`, `[[array-of-tables]]`, `key = "string"`,
//! `key = 123` / `0x7F`, `key = true|false`, `key = [ ... ]` arrays of
//! strings/integers (multi-line allowed), and `#` comments. Anything else
//! is a parse error — the two config files this crate owns stay inside
//! the subset by construction.

use std::collections::BTreeMap;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `"…"` string.
    Str(String),
    /// Integer (decimal or `0x` hex).
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
    /// `[ ... ]` array.
    Arr(Vec<Value>),
}

impl Value {
    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer inside, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// String elements of an array (ignores non-strings).
    pub fn str_items(&self) -> Vec<String> {
        self.as_arr()
            .map(|a| {
                a.iter()
                    .filter_map(|v| v.as_str().map(String::from))
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// One `key = value` table.
pub type Table = BTreeMap<String, Value>;

/// A parsed document: table name → occurrences (one for `[t]`, several
/// for repeated `[[t]]`). Top-level keys live under the empty name `""`.
#[derive(Debug, Default)]
pub struct Doc {
    /// Table name → the tables declared under it, in order.
    pub tables: BTreeMap<String, Vec<Table>>,
}

impl Doc {
    /// The single `[name]` table, if present.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name).and_then(|v| v.first())
    }

    /// All `[[name]]` tables, in declaration order.
    pub fn tables_of(&self, name: &str) -> &[Table] {
        self.tables.get(name).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Parses a document; errors carry the 1-based line number.
pub fn parse(src: &str) -> Result<Doc, String> {
    let mut doc = Doc::default();
    let mut current = String::new();
    doc.tables.insert(String::new(), vec![Table::new()]);

    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            current = name.trim().to_string();
            doc.tables
                .entry(current.clone())
                .or_default()
                .push(Table::new());
        } else if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            current = name.trim().to_string();
            let slot = doc.tables.entry(current.clone()).or_default();
            if slot.is_empty() {
                slot.push(Table::new());
            } else {
                return Err(format!("line {lineno}: table [{current}] declared twice"));
            }
        } else if let Some((key, rest)) = line.split_once('=') {
            let key = key.trim().to_string();
            let mut value_src = rest.trim().to_string();
            // Multi-line array: keep consuming lines until brackets
            // balance (strings in our subset never contain brackets that
            // would confuse this, but count them properly anyway).
            while value_src.starts_with('[') && !array_closed(&value_src) {
                let Some((_, next)) = lines.next() else {
                    return Err(format!("line {lineno}: unterminated array for key {key}"));
                };
                value_src.push(' ');
                value_src.push_str(strip_comment(next).trim());
            }
            let value =
                parse_value(&value_src).map_err(|e| format!("line {lineno}: key {key}: {e}"))?;
            let slot = doc
                .tables
                .get_mut(&current)
                .and_then(|v| v.last_mut())
                .ok_or_else(|| format!("line {lineno}: no open table"))?;
            if slot.insert(key.clone(), value).is_some() {
                return Err(format!("line {lineno}: duplicate key {key}"));
            }
        } else {
            return Err(format!("line {lineno}: cannot parse '{line}'"));
        }
    }
    Ok(doc)
}

/// Drops a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// True when a value string starting with `[` has balanced brackets
/// outside string literals.
fn array_closed(s: &str) -> bool {
    let b = s.as_bytes();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'[' if !in_str => depth += 1,
            b']' if !in_str => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    depth == 0
}

fn parse_value(src: &str) -> Result<Value, String> {
    let src = src.trim();
    if let Some(body) = src.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?;
        let mut items = Vec::new();
        for part in split_array_items(body) {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_value(part)?);
            }
        }
        return Ok(Value::Arr(items));
    }
    if let Some(body) = src.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| "unterminated string".to_string())?;
        // The subset needs no escapes beyond `\\` and `\"`.
        return Ok(Value::Str(body.replace("\\\"", "\"").replace("\\\\", "\\")));
    }
    match src {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let (digits, radix) = match src.strip_prefix("0x").or_else(|| src.strip_prefix("0X")) {
        Some(hex) => (hex, 16),
        None => (src, 10),
    };
    i64::from_str_radix(&digits.replace('_', ""), radix)
        .map(Value::Int)
        .map_err(|_| format!("cannot parse value '{src}'"))
}

/// Splits array body text on top-level commas (strings respected).
fn split_array_items(body: &str) -> Vec<String> {
    let b = body.as_bytes();
    let mut items = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut depth = 0i32;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'[' if !in_str => depth += 1,
            b']' if !in_str => depth -= 1,
            b',' if !in_str && depth == 0 => {
                items.push(body[start..i].to_string());
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    items.push(body[start..].to_string());
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_arrays_and_scalars() {
        let doc = parse(
            r#"
top = 3
[one]
name = "a"  # trailing comment
hex = 0x7F
flag = true
list = [
    "x",   # per-item comment
    "y",
]
[[many]]
n = 1
[[many]]
n = 2
"#,
        )
        .unwrap();
        assert_eq!(doc.table("").unwrap()["top"], Value::Int(3));
        let one = doc.table("one").unwrap();
        assert_eq!(one["name"].as_str(), Some("a"));
        assert_eq!(one["hex"].as_int(), Some(0x7F));
        assert_eq!(one["flag"], Value::Bool(true));
        assert_eq!(one["list"].str_items(), vec!["x", "y"]);
        let many = doc.tables_of("many");
        assert_eq!(many.len(), 2);
        assert_eq!(many[1]["n"].as_int(), Some(2));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("[t]\nbroken line").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse("[t]\n[t]").unwrap_err();
        assert!(err.contains("twice"), "{err}");
        let err = parse("k = \"unterminated").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse("k = \"a#b\"").unwrap();
        assert_eq!(doc.table("").unwrap()["k"].as_str(), Some("a#b"));
    }
}
