//! `lint.toml`: the zone map that makes the rules codebase-aware.
//!
//! Rules never hard-code paths; everything they check is declared here so
//! adding a file to a zone (or a new zone) is a config edit, not a code
//! change. See the repo-root `lint.toml` for the live configuration and
//! the README "Static analysis" section for the rule-by-rule contract.

use crate::toml;
use std::path::Path;

/// An alloc-free zone: a file plus the functions inside it whose bodies
/// must not allocate. (Whole files are never alloc-free — constructors
/// legitimately allocate; the steady-state query path must not.)
#[derive(Debug, Clone)]
pub struct AllocZone {
    /// Workspace-relative path of the zoned file.
    pub path: String,
    /// Names of the functions whose bodies are in the zone. Every
    /// function with a listed name in the file is covered, including
    /// trait-impl methods.
    pub functions: Vec<String>,
}

/// Everything `lint.toml` declares.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Directory roots to walk for the workspace-wide rules.
    pub roots: Vec<String>,
    /// Path prefixes excluded from every rule (fixtures, vendor, target).
    pub exclude: Vec<String>,
    /// Files whose non-test code must be panic-free.
    pub panic_free: Vec<String>,
    /// Function-scoped alloc-free zones.
    pub alloc_free: Vec<AllocZone>,
    /// Path prefixes where atomic `Ordering::*` uses need an
    /// `// ordering:` justification.
    pub ordering_paths: Vec<String>,
    /// Crate-root files that must carry `#![forbid(unsafe_code)]`.
    pub forbid_unsafe_roots: Vec<String>,
    /// The only files allowed to contain `unsafe` at all (the workspace's
    /// declared unsafe zone); an `unsafe` token anywhere else is a
    /// finding even when it carries a `// SAFETY:` comment.
    pub unsafe_allowed_files: Vec<String>,
    /// The checked-in registry file (workspace-relative).
    pub registry_path: String,
    /// The protocol source the registry is extracted from.
    pub protocol_path: String,
    /// The WAL source the registry's record kinds are extracted from.
    pub wal_path: String,
    /// The store format source the registry's artifact version and
    /// section kinds are extracted from (empty = store diff disabled).
    pub store_path: String,
    /// The observability metric-name source the registry's
    /// `[metric_names]` section is extracted from (empty = obs diff
    /// disabled).
    pub obs_path: String,
}

impl LintConfig {
    /// Parses the `lint.toml` text.
    pub fn parse(src: &str) -> Result<Self, String> {
        let doc = toml::parse(src)?;
        let mut cfg = LintConfig::default();
        if let Some(files) = doc.table("files") {
            if let Some(v) = files.get("roots") {
                cfg.roots = v.str_items();
            }
            if let Some(v) = files.get("exclude") {
                cfg.exclude = v.str_items();
            }
        }
        if let Some(t) = doc.table("panic_free") {
            if let Some(v) = t.get("paths") {
                cfg.panic_free = v.str_items();
            }
        }
        for t in doc.tables_of("alloc_free") {
            let path = t
                .get("path")
                .and_then(|v| v.as_str())
                .ok_or("alloc_free zone missing 'path'")?
                .to_string();
            let functions = t
                .get("functions")
                .map(|v| v.str_items())
                .unwrap_or_default();
            if functions.is_empty() {
                return Err(format!("alloc_free zone {path} lists no functions"));
            }
            cfg.alloc_free.push(AllocZone { path, functions });
        }
        if let Some(t) = doc.table("ordering") {
            if let Some(v) = t.get("paths") {
                cfg.ordering_paths = v.str_items();
            }
        }
        if let Some(t) = doc.table("unsafe") {
            if let Some(v) = t.get("forbid_crate_roots") {
                cfg.forbid_unsafe_roots = v.str_items();
            }
            if let Some(v) = t.get("allowed_files") {
                cfg.unsafe_allowed_files = v.str_items();
            }
        }
        if let Some(t) = doc.table("wire_registry") {
            for (key, slot) in [
                ("registry", &mut cfg.registry_path),
                ("protocol", &mut cfg.protocol_path),
                ("wal", &mut cfg.wal_path),
                ("store", &mut cfg.store_path),
                ("obs", &mut cfg.obs_path),
            ] {
                if let Some(v) = t.get(key).and_then(|v| v.as_str()) {
                    *slot = v.to_string();
                }
            }
        }
        if cfg.roots.is_empty() {
            return Err("lint.toml declares no [files] roots".into());
        }
        Ok(cfg)
    }

    /// Loads and parses `<root>/lint.toml`.
    pub fn load(root: &Path) -> Result<Self, String> {
        let path = root.join("lint.toml");
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::parse(&src)
    }

    /// True when the workspace-relative `path` is excluded from scanning.
    pub fn is_excluded(&self, path: &str) -> bool {
        self.exclude.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// True when `path` falls under one of the ordering-zone prefixes.
    pub fn in_ordering_zone(&self, path: &str) -> bool {
        self.ordering_paths
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }
}
