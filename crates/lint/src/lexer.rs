//! A comment- and string-aware Rust token scanner.
//!
//! This is not a parser: it produces a flat token stream plus a separate
//! comment list, which is exactly the granularity the lint rules need.
//! The scanner understands the lexical constructs that would otherwise
//! produce false positives — line and (nested) block comments, string /
//! raw-string / byte-string literals, char literals vs. lifetimes, raw
//! identifiers — so a `panic!` inside a string or a doc comment is never
//! mistaken for code.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `Ordering`, ...).
    Ident,
    /// A single punctuation byte (`.`, `[`, `!`, ...).
    Punct(u8),
    /// Numeric literal (`42`, `0xFF`, `1.5e3`, `8usize`).
    Num,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One code token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token's kind.
    pub kind: TokKind,
    /// The token's text (identifier name, literal spelling, punct char).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True when this token is the punctuation byte `p`.
    pub fn is_punct(&self, p: u8) -> bool {
        self.kind == TokKind::Punct(p)
    }
}

/// One comment (line or block) with the lines it spans.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text, including the `//` / `/*` markers.
    pub text: String,
    /// 1-based first line.
    pub line_start: u32,
    /// 1-based last line (equal to `line_start` for line comments).
    pub line_end: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order, separate from the token stream.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// True when `line` carries at least one code token.
    pub fn line_has_code(&self, line: u32) -> bool {
        // Tokens are in line order; a binary search would work, but files
        // are small enough that a scan per query never shows up.
        self.toks.iter().any(|t| t.line == line)
    }

    /// True when `line` is inside (or carries) at least one comment.
    pub fn line_has_comment(&self, line: u32) -> bool {
        self.comments
            .iter()
            .any(|c| c.line_start <= line && line <= c.line_end)
    }

    /// All comments that touch `line`.
    pub fn comments_on_line(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments
            .iter()
            .filter(move |c| c.line_start <= line && line <= c.line_end)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs are consumed to end-of-file (the real compiler will reject
/// the file anyway; the linter stays robust on any input).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! count_newlines {
        ($range:expr) => {
            line += b[$range].iter().filter(|&&c| c == b'\n').count() as u32
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line_start: line,
                    line_end: line,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let line_start = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line_start,
                    line_end: line,
                });
            }
            b'"' => {
                let (end, tok_line) = (scan_string(b, i), line);
                count_newlines!(i..end);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: src[i..end].to_string(),
                    line: tok_line,
                });
                i = end;
            }
            b'\'' => {
                // Lifetime or char literal. `'\…'` and `'x'` are chars;
                // `'ident` not followed by a closing quote is a lifetime.
                let (end, kind) = scan_quote(b, i);
                out.toks.push(Tok {
                    kind,
                    text: src[i..end].to_string(),
                    line,
                });
                count_newlines!(i..end);
                i = end;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    if is_ident_cont(b[i]) {
                        i += 1;
                    } else if b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                        i += 2;
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if is_ident_start(c) => {
                let start = i;
                i += 1;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                let word = &src[start..i];
                // String-literal prefixes: r"…", r#"…"#, b"…", br#"…"#,
                // b'…'; and raw identifiers r#name.
                if matches!(word, "r" | "b" | "br") && i < b.len() {
                    if let Some(end) = scan_prefixed_literal(b, word, i) {
                        let tok_line = line;
                        count_newlines!(start..end);
                        let kind = if b[i] == b'\'' {
                            TokKind::Char
                        } else {
                            TokKind::Str
                        };
                        out.toks.push(Tok {
                            kind,
                            text: src[start..end].to_string(),
                            line: tok_line,
                        });
                        i = end;
                        continue;
                    }
                    if word == "r" && b[i] == b'#' && i + 1 < b.len() && is_ident_start(b[i + 1]) {
                        // Raw identifier r#name: token is the bare name.
                        let name_start = i + 1;
                        i += 2;
                        while i < b.len() && is_ident_cont(b[i]) {
                            i += 1;
                        }
                        out.toks.push(Tok {
                            kind: TokKind::Ident,
                            text: src[name_start..i].to_string(),
                            line,
                        });
                        continue;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: word.to_string(),
                    line,
                });
            }
            other => {
                out.toks.push(Tok {
                    kind: TokKind::Punct(other),
                    text: (other as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Scans a normal `"…"` string starting at `b[i] == b'"'`; returns the
/// index one past the closing quote (or EOF).
fn scan_string(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    b.len()
}

/// Scans a raw string `#*"…"#*` starting at `b[i]` (which is `#` or `"`);
/// returns the index one past the closing delimiter, or `None` if this is
/// not actually a raw-string opener.
fn scan_raw_string(b: &[u8], i: usize) -> Option<usize> {
    let mut hashes = 0usize;
    let mut j = i;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        return None;
    }
    j += 1;
    while j < b.len() {
        if b[j] == b'"'
            && b.len() - (j + 1) >= hashes
            && b[j + 1..j + 1 + hashes].iter().all(|&c| c == b'#')
        {
            return Some(j + 1 + hashes);
        }
        j += 1;
    }
    Some(b.len())
}

/// Scans the literal following a `r` / `b` / `br` prefix ending at `i`.
/// Returns the end index, or `None` when the prefix is just an identifier.
fn scan_prefixed_literal(b: &[u8], word: &str, i: usize) -> Option<usize> {
    match (word, b[i]) {
        ("r" | "br", b'"' | b'#') => scan_raw_string(b, i),
        ("b", b'"') => Some(scan_string(b, i)),
        ("b", b'\'') => {
            let (end, _) = scan_quote(b, i);
            Some(end)
        }
        _ => None,
    }
}

/// Scans from a `'` at `b[i]`: distinguishes char literals from lifetimes.
fn scan_quote(b: &[u8], i: usize) -> (usize, TokKind) {
    let mut j = i + 1;
    if j >= b.len() {
        return (j, TokKind::Lifetime);
    }
    if b[j] == b'\\' {
        // Escaped char literal: consume to the closing quote.
        j += 2;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return ((j + 1).min(b.len()), TokKind::Char);
    }
    if is_ident_start(b[j]) {
        // `'x'` is a char; `'x` followed by more ident chars or a
        // non-quote is a lifetime.
        let mut k = j + 1;
        while k < b.len() && is_ident_cont(b[k]) {
            k += 1;
        }
        if k < b.len() && b[k] == b'\'' && k == j + 1 {
            return (k + 1, TokKind::Char);
        }
        // Multi-byte chars like 'é': ident-cont covers bytes >= 0x80, so a
        // quote right after the run still closes a char literal.
        if k < b.len() && b[k] == b'\'' && b[j] >= 0x80 {
            return (k + 1, TokKind::Char);
        }
        return (k, TokKind::Lifetime);
    }
    // Punctuation char literal like '(' or '0'.
    if j + 1 < b.len() && b[j + 1] == b'\'' {
        return (j + 2, TokKind::Char);
    }
    (j + 1, TokKind::Lifetime)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_not_code() {
        let l = lex("let x = 1; // unwrap() here is prose\n/* panic! */ let y;");
        assert!(!l.toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!l.toks.iter().any(|t| t.is_ident("panic")));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("unwrap"));
    }

    #[test]
    fn strings_are_single_tokens() {
        let l = lex(r###"let s = "a.unwrap() \" quote"; let t = r#"raw "panic!" body"# ;"###);
        assert!(!l.toks.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            l.toks
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let l = lex("a\n/* one /* two */ still */\nb");
        assert_eq!(idents("a\n/* one /* two */ still */\nb"), vec!["a", "b"]);
        assert_eq!(l.toks[1].line, 3);
        assert_eq!(l.comments[0].line_start, 2);
    }

    #[test]
    fn raw_identifiers_and_byte_strings() {
        let l = lex(r##"let r#fn = b"panic!"; let x = br#"x"#;"##);
        assert!(l.toks.iter().any(|t| t.is_ident("fn")));
        assert!(!l.toks.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let l = lex("let a = \"line\nline\nline\";\nlet b = 1;");
        let b_tok = l.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 4);
    }
}
