// Fixture: the same shapes written panic-free, plus a justified allow.

pub fn decode(buf: &[u8]) -> Option<u8> {
    let a = buf.first().copied()?;
    let b = buf.get(1).copied().unwrap_or_default();
    let tail = match buf.split_first() {
        Some((_, rest)) => rest.len() as u8,
        None => 0,
    };
    // lint:allow(panic, index is bounds-checked by the branch above)
    let c = if buf.len() > 2 { buf[2] } else { 0 };
    let arr = [a, b]; // array literal, not an index expression
    let s: &[u8] = &arr;
    debug_assert!(s.len() == 2); // debug_assert is allowed in zones
    Some(a.wrapping_add(b).wrapping_add(tail).wrapping_add(c))
}
