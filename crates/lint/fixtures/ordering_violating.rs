// Fixture: three atomic orderings with no `// ordering:` justification
// (l8, l9, l13 — the blank line at l12 breaks the comment window, so
// the unrelated comment at l11 cannot cover the store).

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed);
    let n = c.load(Ordering::SeqCst);

    // a comment that is not the magic word

    c.store(n, Ordering::Release);
    n
}
