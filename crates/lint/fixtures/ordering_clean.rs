// Fixture: every atomic ordering justified, trailing or above; the
// cmp::Ordering match arm must not be mistaken for an atomic.

use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64, a: u64, b: u64) -> u64 {
    // ordering: Relaxed — independent monotonic counter.
    c.fetch_add(1, Ordering::Relaxed);
    let n = c.load(Ordering::Acquire); // ordering: pairs with store below
    match a.cmp(&b) {
        CmpOrdering::Less => {}
        CmpOrdering::Equal | CmpOrdering::Greater => {}
    }
    // ordering: Release — publishes n to the Acquire load above.
    c.store(n, Ordering::Release);
    n
}
