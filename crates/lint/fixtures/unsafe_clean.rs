#![forbid(unsafe_code)]

// Fixture: no unsafe anywhere and the root forbids it.

pub fn double(x: u8) -> u8 {
    x.wrapping_mul(2)
}
