// Fixture: every panic-rule construct, one per line. Expected findings:
// unwrap (l7), expect (l8), panic! (l9), unreachable! (l10), indexing
// (l11), reasonless allow does not suppress (l13) and is itself flagged.

pub fn decode(buf: &[u8]) -> u8 {
    let opt: Option<u8> = buf.first().copied();
    let a = opt.unwrap();
    let b = opt.expect("present");
    panic!("boom");
    unreachable!();
    let c = buf[0];
    // lint:allow(panic)
    let d = buf[1];
    a + b + c + d
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v = vec![1];
        assert_eq!(v[0], 1);
        v.get(1).unwrap();
    }
}
