// Fixture for the alloc rule: `hot` is zoned and allocates six ways
// (l10-l15); `build` also allocates but is NOT in the zone.

pub fn build() -> Vec<u32> {
    let mut v = Vec::new();
    v.push(1);
    v
}

pub fn hot(xs: &[u32]) -> u32 {
    let a = Vec::with_capacity(xs.len());
    let b = xs.to_vec();
    let c: Vec<u32> = xs.iter().copied().collect();
    let d = format!("{}", xs.len());
    let e = vec![0u32; 4];
    let f = Box::new(xs.len() as u32);
    (a.len() + b.len() + c.len() + d.len() + e.len()) as u32 + *f
}
