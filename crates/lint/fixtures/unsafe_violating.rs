// Fixture: an unsafe block with no SAFETY contract (l5) in a file whose
// crate root (this file) also lacks #![forbid(unsafe_code)].

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
