// Fixture: the zoned function only reuses scratch; construction happens
// in the unzoned constructor.

pub struct Scratch {
    buf: Vec<u32>,
}

impl Scratch {
    pub fn new(n: usize) -> Self {
        Self {
            buf: Vec::with_capacity(n),
        }
    }
}

pub fn hot(xs: &[u32], scratch: &mut Scratch) -> u32 {
    scratch.buf.clear();
    for &x in xs {
        scratch.buf.push(x); // push into pre-sized scratch: no realloc
    }
    scratch.buf.iter().sum()
}
