#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # islabel-serve
//!
//! The concurrent serving layer over the IS-LABEL workspace: a sharded
//! [`QueryService`] worker pool that answers point-to-point distance
//! queries from an immutable, hot-swappable index
//! [`Snapshot`].
//!
//! The paper's index is built once and then serves a workload of
//! independent queries (Section 2); this crate supplies the process
//! architecture that turns the library into a server:
//!
//! * **Sharded workers** — each shard owns a worker thread, a bounded
//!   request queue and a per-thread [`QuerySession`], so the hot path
//!   reuses search state instead of allocating per query and scales with
//!   cores.
//! * **Batch submission** — [`QueryService::submit`] fans a batch out
//!   across the shards and returns a [`BatchTicket`]; callers overlap
//!   submission and collection however they like.
//! * **Hot swap** — the service queries through an [`OracleHandle`]:
//!   swap in a freshly built index at any time, new requests pick it up,
//!   and requests already being processed finish on the snapshot they
//!   started on.
//! * **Observability** — per-shard query/batch/busy-time counters and a
//!   fixed-bucket latency histogram with p50/p99 accessors
//!   ([`ShardStats`], [`LatencyHistogram`]) aggregated in
//!   [`ServiceStats`].
//! * **Graceful shutdown** — [`QueryService::shutdown`] (and `Drop`)
//!   closes the queues, drains every queued request and joins the
//!   workers.
//! * **Background compaction** — [`RebuildCoordinator`] ([`rebuild`])
//!   folds accumulated dynamic updates (overlay + write-ahead log) into a
//!   fresh pristine index on a worker thread, then atomically persists,
//!   swaps, and truncates the log — *new index durable → swap → WAL
//!   truncate*, so a crash at any point loses nothing.
//!
//! ```
//! use islabel_core::{BuildConfig, IsLabelIndex};
//! use islabel_graph::GraphBuilder;
//! use islabel_serve::{QueryService, ServeConfig};
//! use std::sync::Arc;
//!
//! let mut b = GraphBuilder::new(4);
//! for v in 0..3 {
//!     b.add_edge(v, v + 1, 2);
//! }
//! let index = IsLabelIndex::build(&b.build(), BuildConfig::default());
//!
//! let service = QueryService::start(Arc::new(index), ServeConfig::default());
//! assert_eq!(service.query(0, 3), Ok(Some(6)));
//! let ticket = service.submit(&[(0, 1), (1, 1), (0, 3)]);
//! assert_eq!(ticket.wait(), Ok(vec![Some(2), Some(0), Some(6)]));
//! let stats = service.shutdown();
//! assert_eq!(stats.total_queries(), 4);
//! ```

pub mod rebuild;

pub use rebuild::{CompactError, CompactStats, RebuildCoordinator};

use islabel_core::snapshot::{OracleHandle, SharedOracle, Snapshot};
use islabel_core::{DistanceOracle, QueryError, QuerySession};
use islabel_graph::{Dist, VertexId};
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing knobs of a [`QueryService`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker shards (threads); `0` selects
    /// [`std::thread::available_parallelism`].
    pub shards: usize,
    /// Bound of each shard's request queue, in batches. Submitters block
    /// when a shard's queue is full — backpressure instead of unbounded
    /// memory growth.
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 0,
            queue_capacity: 1024,
        }
    }
}

impl ServeConfig {
    /// A config with an explicit shard count (`0` = auto).
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }

    fn effective_shards(&self) -> usize {
        match self.shards {
            0 => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

/// One queued unit of work: a contiguous chunk of a submitted batch.
struct Job {
    pairs: Vec<(VertexId, VertexId)>,
    /// Offset of this chunk inside the batch's result vector.
    base: usize,
    state: Arc<BatchState>,
}

/// Shared completion state of one submitted batch.
struct BatchState {
    results: Mutex<BatchResults>,
    done: Condvar,
}

struct BatchResults {
    out: Vec<Option<Dist>>,
    first_err: Option<QueryError>,
    /// Chunks still outstanding.
    remaining: usize,
}

/// A claim on the results of one [`QueryService::submit`] call.
///
/// Dropping the ticket without calling [`wait`](BatchTicket::wait) is
/// allowed; the queries still run and their stats are still recorded.
#[must_use = "a ticket does nothing until wait()ed on"]
pub struct BatchTicket {
    state: Arc<BatchState>,
}

impl BatchTicket {
    /// Blocks until every chunk of the batch has been answered; returns
    /// the distances in input order. Any failing query fails the whole
    /// batch (as in [`DistanceOracle::distance_batch`]), but because
    /// chunks run concurrently on different shards, *which* failing
    /// pair's error is reported is unspecified when several fail — don't
    /// rely on it for error-to-pair attribution.
    pub fn wait(self) -> Result<Vec<Option<Dist>>, QueryError> {
        let mut guard = self.state.results.lock().unwrap_or_else(|e| e.into_inner());
        while guard.remaining > 0 {
            guard = self
                .state
                .done
                .wait(guard)
                .unwrap_or_else(|e| e.into_inner());
        }
        match guard.first_err {
            Some(e) => Err(e),
            None => Ok(std::mem::take(&mut guard.out)),
        }
    }
}

impl std::fmt::Debug for BatchTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchTicket").finish_non_exhaustive()
    }
}

/// Bounded MPSC queue feeding one shard's worker.
struct ShardQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl ShardQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks while the queue is full. Returns `false` if the queue was
    /// closed (job dropped) — unreachable through the public API, which
    /// closes queues only once no submitter can exist.
    fn push(&self, job: Job) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.closed {
                return false;
            }
            if state.jobs.len() < self.capacity {
                state.jobs.push_back(job);
                self.not_empty.notify_one();
                return true;
            }
            state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until a job is available; `None` once closed *and* drained,
    /// so shutdown never discards accepted work.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = state.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking pop; `None` when the queue is momentarily empty.
    fn try_pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let job = state.jobs.pop_front();
        if job.is_some() {
            self.not_full.notify_one();
        }
        job
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

// The latency histogram lived here through PR 9; PR 10 promoted it into
// the zero-dependency `islabel-obs` crate so the network server, the
// registry exposition, and this worker pool share one implementation.
// Re-exported for compatibility (islabel-net and the integration suites
// import it from here).
pub use islabel_obs::{AtomicLatencyHistogram, LatencyHistogram, LATENCY_BUCKETS};

/// Monotonic per-shard counters, written by the worker with relaxed
/// atomics.
#[derive(Default)]
struct ShardCounters {
    queries: AtomicU64,
    batches: AtomicU64,
    busy_nanos: AtomicU64,
    errors: AtomicU64,
    swaps_observed: AtomicU64,
    latency: AtomicLatencyHistogram,
}

/// A point-in-time snapshot of one shard's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index (`0..num_shards`).
    pub shard: usize,
    /// Queries answered (including ones that returned an error).
    pub queries: u64,
    /// Batch chunks processed.
    pub batches: u64,
    /// Wall-clock time the worker spent answering (excludes queue idle).
    pub busy: Duration,
    /// Queries that returned a typed error.
    pub errors: u64,
    /// Times the worker refreshed its session onto a newer snapshot.
    pub swaps_observed: u64,
    /// Per-query service-time distribution (inside the worker, excludes
    /// queueing), with [`p50`](LatencyHistogram::p50) /
    /// [`p99`](LatencyHistogram::p99) accessors.
    pub latency: LatencyHistogram,
}

impl ShardStats {
    /// Mean in-worker service time per query (`busy / queries`).
    pub fn mean_query_latency(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.busy / self.queries.min(u64::from(u32::MAX)) as u32
        }
    }
}

/// Aggregated [`ShardStats`] for a whole service.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
}

impl ServiceStats {
    /// Queries answered across all shards.
    pub fn total_queries(&self) -> u64 {
        self.shards.iter().map(|s| s.queries).sum()
    }

    /// Batch chunks processed across all shards.
    pub fn total_batches(&self) -> u64 {
        self.shards.iter().map(|s| s.batches).sum()
    }

    /// Errors across all shards.
    pub fn total_errors(&self) -> u64 {
        self.shards.iter().map(|s| s.errors).sum()
    }

    /// Busy time summed over shards (CPU-seconds of query work).
    pub fn total_busy(&self) -> Duration {
        self.shards.iter().map(|s| s.busy).sum()
    }

    /// Service-wide per-query latency distribution: every shard's
    /// histogram merged.
    pub fn latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for s in &self.shards {
            merged.merge(&s.latency);
        }
        merged
    }
}

struct Shard {
    queue: Arc<ShardQueue>,
    counters: Arc<ShardCounters>,
    worker: Option<JoinHandle<()>>,
}

/// A sharded worker pool answering distance queries from a hot-swappable
/// index snapshot.
///
/// See the [crate docs](crate) for the serving model. Construction spawns
/// the workers immediately; the service accepts queries until
/// [`shutdown`](QueryService::shutdown) (or drop), which drains accepted
/// work before joining.
pub struct QueryService {
    handle: Arc<OracleHandle>,
    shards: Vec<Shard>,
    /// Round-robin cursor so small batches spread across shards.
    next_shard: AtomicUsize,
}

impl QueryService {
    /// Starts a service over a freshly wrapped oracle.
    pub fn start(oracle: SharedOracle, config: ServeConfig) -> Self {
        Self::with_handle(
            Arc::new(OracleHandle::new(Snapshot::from_arc(oracle))),
            config,
        )
    }

    /// Starts a service over an existing [`OracleHandle`], sharing it with
    /// whoever performs the swaps (e.g. an index-rebuild pipeline).
    pub fn with_handle(handle: Arc<OracleHandle>, config: ServeConfig) -> Self {
        let num_shards = config.effective_shards();
        let shards = (0..num_shards)
            .map(|i| {
                let queue = Arc::new(ShardQueue::new(config.queue_capacity));
                let counters = Arc::new(ShardCounters::default());
                let worker = {
                    let queue = Arc::clone(&queue);
                    let counters = Arc::clone(&counters);
                    let handle = Arc::clone(&handle);
                    std::thread::Builder::new()
                        .name(format!("islabel-serve-{i}"))
                        .spawn(move || worker_loop(&queue, &handle, &counters))
                        .expect("spawn shard worker")
                };
                Shard {
                    queue,
                    counters,
                    worker: Some(worker),
                }
            })
            .collect();
        Self {
            handle,
            shards,
            next_shard: AtomicUsize::new(0),
        }
    }

    /// The shared handle the workers load snapshots from.
    pub fn handle(&self) -> &Arc<OracleHandle> {
        &self.handle
    }

    /// Hot-swaps the served index (see [`OracleHandle::swap`]): new
    /// requests are answered by `oracle`, requests already being processed
    /// finish on the snapshot they started on. Returns the retired
    /// snapshot.
    pub fn swap(&self, oracle: SharedOracle) -> Snapshot {
        self.handle.swap(oracle)
    }

    /// Convenience: [`swap`](QueryService::swap) for an unshared engine.
    pub fn swap_oracle(&self, oracle: impl DistanceOracle + 'static) -> Snapshot {
        self.handle.swap_oracle(oracle)
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Submits a batch of independent queries and returns a ticket for the
    /// results. The batch is split into contiguous chunks and fanned out
    /// over the shards (small batches round-robin so independent callers
    /// spread); blocks only if the target queues are full (backpressure).
    pub fn submit(&self, pairs: &[(VertexId, VertexId)]) -> BatchTicket {
        let n = pairs.len();
        let num_shards = self.shards.len();
        let num_chunks = num_shards.min(n).max(1);
        let chunk = n.div_ceil(num_chunks).max(1);
        let state = Arc::new(BatchState {
            results: Mutex::new(BatchResults {
                out: vec![None; n],
                first_err: None,
                remaining: if n == 0 { 0 } else { n.div_ceil(chunk) },
            }),
            done: Condvar::new(),
        });
        if n == 0 {
            return BatchTicket { state };
        }
        // ordering: Relaxed — round-robin ticket for shard spreading;
        // only uniqueness matters, no memory is published through it.
        let start = self.next_shard.fetch_add(1, Ordering::Relaxed);
        for (i, slice) in pairs.chunks(chunk).enumerate() {
            let job = Job {
                pairs: slice.to_vec(),
                base: i * chunk,
                state: Arc::clone(&state),
            };
            let accepted = self.shards[(start + i) % num_shards].queue.push(job);
            debug_assert!(accepted, "queues stay open while the service exists");
        }
        BatchTicket { state }
    }

    /// Blocking single query through the pool; equivalent to a one-element
    /// [`submit`](QueryService::submit) + [`BatchTicket::wait`].
    pub fn query(&self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        self.submit(&[(s, t)])
            .wait()
            .map(|mut v| v.pop().expect("one result for one query"))
    }

    /// A point-in-time snapshot of every shard's counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| ShardStats {
                    shard: i,
                    // ordering: Relaxed — independent monotonic counters;
                    // a stats snapshot tolerates tearing by design.
                    queries: s.counters.queries.load(Ordering::Relaxed),
                    batches: s.counters.batches.load(Ordering::Relaxed),
                    busy: Duration::from_nanos(s.counters.busy_nanos.load(Ordering::Relaxed)),
                    errors: s.counters.errors.load(Ordering::Relaxed),
                    swaps_observed: s.counters.swaps_observed.load(Ordering::Relaxed),
                    latency: s.counters.latency.snapshot(),
                })
                .collect(),
        }
    }

    /// Registers this service's shard counters and merged latency
    /// histogram on `registry` as collector closures (sampled at
    /// exposition time, so recording stays a plain relaxed atomic in the
    /// worker). Re-registering — e.g. after a service restart — replaces
    /// the previous instance's collectors.
    pub fn register_metrics(&self, registry: &islabel_obs::Registry) {
        use islabel_obs::names::*;
        let all: Vec<Arc<ShardCounters>> = self
            .shards
            .iter()
            .map(|s| Arc::clone(&s.counters))
            .collect();
        for (i, c) in all.iter().enumerate() {
            let shard = i.to_string();
            let labels: &[(&str, &str)] = &[("shard", &shard)];
            let h = Arc::clone(c);
            registry.counter_fn(
                METRIC_SERVE_QUERIES_TOTAL,
                "Queries answered by the shard worker.",
                labels,
                // ordering: Relaxed — independent monotonic counter; the
                // exposition snapshot tolerates tearing by design.
                move || h.queries.load(Ordering::Relaxed),
            );
            let h = Arc::clone(c);
            registry.counter_fn(
                METRIC_SERVE_BATCHES_TOTAL,
                "Batch chunks processed by the shard worker.",
                labels,
                // ordering: Relaxed — same counter discipline.
                move || h.batches.load(Ordering::Relaxed),
            );
            let h = Arc::clone(c);
            registry.counter_fn(
                METRIC_SERVE_ERRORS_TOTAL,
                "Queries that returned a typed error.",
                labels,
                // ordering: Relaxed — same counter discipline.
                move || h.errors.load(Ordering::Relaxed),
            );
            let h = Arc::clone(c);
            registry.counter_fn(
                METRIC_SERVE_SWAPS_OBSERVED_TOTAL,
                "Hot-swap refreshes observed by the shard worker.",
                labels,
                // ordering: Relaxed — same counter discipline.
                move || h.swaps_observed.load(Ordering::Relaxed),
            );
            let h = Arc::clone(c);
            registry.counter_fn(
                METRIC_SERVE_BUSY_NANOSECONDS_TOTAL,
                "Wall-clock nanoseconds the shard worker spent answering.",
                labels,
                // ordering: Relaxed — same counter discipline.
                move || h.busy_nanos.load(Ordering::Relaxed),
            );
        }
        registry.histogram_fn(
            METRIC_SERVE_QUERY_LATENCY_SECONDS,
            "In-worker service time per query, all shards merged.",
            &[],
            move || {
                let mut merged = LatencyHistogram::new();
                for c in &all {
                    merged.merge(&c.latency.snapshot());
                }
                merged
            },
        );
    }

    /// Graceful shutdown: stops accepting work, drains every queued
    /// request, joins the workers and returns the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        for shard in &self.shards {
            shard.queue.close();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                worker.join().expect("shard worker panicked");
            }
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("shards", &self.shards.len())
            .field("handle", &self.handle)
            .finish()
    }
}

/// One shard's life: pin the current snapshot, open a session, answer
/// jobs, refresh the session when a hot swap is observed, exit when the
/// queue closes and drains. A job popped before a swap is always finished
/// on the snapshot it started on.
fn worker_loop(queue: &ShardQueue, handle: &OracleHandle, counters: &ShardCounters) {
    'serve: loop {
        // Block for work *before* pinning a snapshot, so an idle shard
        // holds no reference to a retired index.
        let Some(first) = queue.pop() else {
            return; // closed and drained
        };
        let snapshot = handle.load();
        let version = snapshot.version();
        let mut session = snapshot.session();
        let mut job = first;
        loop {
            process(job, session.as_mut(), counters, version);
            if handle.version() != version {
                // ordering: Relaxed — independent monotonic counter.
                counters.swaps_observed.fetch_add(1, Ordering::Relaxed);
                continue 'serve; // reload the snapshot for the next job
            }
            match queue.try_pop() {
                Some(next) => job = next,
                // Idle: drop the session (and its snapshot pin) while
                // blocking for more work.
                None => continue 'serve,
            }
        }
    }
}

fn process(job: Job, session: &mut dyn QuerySession, counters: &ShardCounters, version: u64) {
    let t0 = Instant::now();
    let mut local: Vec<Option<Dist>> = Vec::with_capacity(job.pairs.len());
    let mut err = None;
    // Registry re-emission happens here, per query, after the engine
    // returns — never inside the session's kernel loops (see the
    // counter-placement invariant in the islabel-obs crate docs).
    let phases = islabel_obs::QueryPhases::global();
    let slowlog = islabel_obs::SlowQueryLog::global();
    let kernel_tier = islabel_core::kernel::active_tier().name();
    for &(s, t) in &job.pairs {
        let q0 = Instant::now();
        let traced_before = session.trace().map_or(0, |tr| tr.queries);
        let answer = session.distance(s, t);
        let elapsed = q0.elapsed();
        counters.latency.record(elapsed);
        // A fresh trace sample exists only if the query actually ran the
        // seeded search (s == t and errors short-circuit before it).
        if let Some(sample) = session
            .trace()
            .filter(|tr| tr.queries > traced_before)
            .map(|tr| tr.last)
        {
            phases.record(
                sample.intersect_ns,
                sample.seed_ns,
                sample.search_ns,
                sample.settled,
            );
            slowlog.observe(islabel_obs::SlowQuery {
                seq: 0,
                src: s,
                dst: t,
                dist: answer.as_ref().ok().and_then(|d| d.map(u64::from)),
                total_ns: elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
                intersect_ns: sample.intersect_ns,
                seed_ns: sample.seed_ns,
                search_ns: sample.search_ns,
                settled: sample.settled,
                kernel_tier,
                snapshot_generation: version,
            });
        }
        match answer {
            Ok(d) => local.push(d),
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    let answered = local.len() as u64 + u64::from(err.is_some());
    // ordering: Relaxed — independent monotonic counters; stats reads
    // tolerate tearing across counters by design.
    counters.queries.fetch_add(answered, Ordering::Relaxed);
    counters.batches.fetch_add(1, Ordering::Relaxed);
    counters
        .busy_nanos
        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    if err.is_some() {
        // ordering: Relaxed — same counter discipline.
        counters.errors.fetch_add(1, Ordering::Relaxed);
    }

    let mut results = job.state.results.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(e) = err {
        results.first_err.get_or_insert(e);
    }
    for (i, d) in local.into_iter().enumerate() {
        results.out[job.base + i] = d;
    }
    results.remaining -= 1;
    if results.remaining == 0 {
        job.state.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use islabel_baselines::BiDijkstraOracle;
    use islabel_core::{BuildConfig, IsLabelIndex};
    use islabel_graph::generators::{erdos_renyi_gnm, WeightModel};
    use islabel_graph::{CsrGraph, GraphBuilder};

    fn test_graph() -> CsrGraph {
        erdos_renyi_gnm(120, 300, WeightModel::UniformRange(1, 7), 0x5E)
    }

    fn service_over(g: &CsrGraph, shards: usize) -> QueryService {
        let index = IsLabelIndex::build(g, BuildConfig::default());
        QueryService::start(
            Arc::new(index),
            ServeConfig {
                shards,
                queue_capacity: 8,
            },
        )
    }

    #[test]
    fn batches_match_direct_queries() {
        let g = test_graph();
        let reference = BiDijkstraOracle::new(g.clone());
        let service = service_over(&g, 3);
        let pairs: Vec<(VertexId, VertexId)> =
            (0..200u32).map(|i| (i % 120, (i * 13 + 7) % 120)).collect();
        let expect: Vec<Option<Dist>> = pairs
            .iter()
            .map(|&(s, t)| reference.try_distance(s, t).unwrap())
            .collect();
        let got = service.submit(&pairs).wait().unwrap();
        assert_eq!(got, expect);
        let stats = service.shutdown();
        assert_eq!(stats.total_queries(), 200);
        assert!(stats.total_batches() >= 1);
        assert_eq!(stats.total_errors(), 0);
    }

    #[test]
    fn single_queries_round_robin_over_shards() {
        let g = test_graph();
        let service = service_over(&g, 2);
        for i in 0..20u32 {
            let (s, t) = (i % 120, (i * 31 + 3) % 120);
            assert!(service.query(s, t).is_ok());
        }
        let stats = service.stats();
        assert_eq!(stats.total_queries(), 20);
        // Round-robin: both shards served some of the 20 singles.
        assert!(stats.shards.iter().all(|s| s.queries > 0), "{stats:?}");
        drop(service);
    }

    #[test]
    fn typed_errors_fail_the_batch_not_the_service() {
        let g = test_graph();
        let service = service_over(&g, 2);
        let err = service.submit(&[(0, 1), (0, 999)]).wait();
        assert!(matches!(
            err,
            Err(QueryError::VertexOutOfRange { vertex: 999, .. })
        ));
        // The service keeps serving after a failed batch.
        assert!(service.query(0, 1).is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.total_errors(), 1);
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let g = test_graph();
        let service = service_over(&g, 2);
        assert_eq!(service.submit(&[]).wait(), Ok(vec![]));
    }

    #[test]
    fn shutdown_drains_accepted_work() {
        let g = test_graph();
        let service = service_over(&g, 1);
        let tickets: Vec<BatchTicket> = (0..30)
            .map(|i| service.submit(&[(i % 120, (i * 7 + 1) % 120), (0, i % 120)]))
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.total_queries(), 60, "shutdown dropped queued work");
        for ticket in tickets {
            ticket.wait().unwrap();
        }
    }

    #[test]
    fn latency_histogram_buckets_and_percentiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.5), Duration::ZERO);
        // 90 fast observations (~1 µs) and 10 slow ones (~1 ms): p50 must
        // land in the fast bucket's range, p99 in the slow one's.
        for _ in 0..90 {
            h.record(Duration::from_micros(1));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(1));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.p50();
        let p99 = h.p99();
        assert!(
            p50 >= Duration::from_micros(1) && p50 <= Duration::from_micros(2),
            "{p50:?}"
        );
        assert!(
            p99 >= Duration::from_millis(1) && p99 <= Duration::from_millis(2),
            "{p99:?}"
        );
        // Conservative upper edge: the quantile never under-reports by
        // more than the bucket width (2x).
        assert!(h.percentile(1.0) >= p99);

        let atomic = AtomicLatencyHistogram::new();
        atomic.record(Duration::from_nanos(0)); // bucket 0, no panic
        atomic.record(Duration::from_secs(3600)); // clamps to the top bucket
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.buckets()[0], 1);
        assert_eq!(snap.buckets()[LATENCY_BUCKETS - 1], 1);

        let mut merged = snap.clone();
        merged.merge(&h);
        assert_eq!(merged.count(), 102);
    }

    #[test]
    fn shard_stats_carry_real_latency_percentiles() {
        let g = test_graph();
        let service = service_over(&g, 2);
        let pairs: Vec<(VertexId, VertexId)> =
            (0..100u32).map(|i| (i % 120, (i * 17 + 3) % 120)).collect();
        service.submit(&pairs).wait().unwrap();
        let stats = service.shutdown();
        let total = stats.latency();
        assert_eq!(total.count(), 100, "one observation per query");
        assert!(total.p50() > Duration::ZERO);
        assert!(total.p99() >= total.p50());
        for s in &stats.shards {
            assert_eq!(s.latency.count(), s.queries);
        }
    }

    #[test]
    fn hot_swap_switches_answers_for_new_requests() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 4);
        b.add_edge(1, 2, 4);
        let before = IsLabelIndex::build(&b.build(), BuildConfig::default());
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        let after = IsLabelIndex::build(&b.build(), BuildConfig::default());

        let service = QueryService::start(Arc::new(before), ServeConfig::with_shards(2));
        assert_eq!(service.query(0, 2), Ok(Some(8)));
        let retired = service.swap_oracle(after);
        assert_eq!(retired.version(), 0);
        assert_eq!(service.handle().version(), 1);
        assert_eq!(service.query(0, 2), Ok(Some(2)));
        // The retired snapshot still answers for whoever pinned it.
        assert_eq!(retired.oracle().try_distance(0, 2), Ok(Some(8)));
    }
}
