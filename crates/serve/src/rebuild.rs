//! Background rebuild-then-swap ("compaction") for a served index.
//!
//! A long-running server accumulates dynamic updates: the overlay grows,
//! deletions of peeled vertices make answers approximate
//! ([`IsLabelIndex::is_stale`]), and the write-ahead log grows without
//! bound. The [`RebuildCoordinator`] folds all of that back into a
//! pristine artifact *while the server keeps answering queries*:
//!
//! 1. **Rebuild** — load the on-disk artifact, replay its WAL
//!    ([`load_index_with_wal`]) and build a fresh index from the
//!    materialized current graph on the calling worker thread. Queries
//!    keep flowing against the old snapshot throughout.
//! 2. **Durability point** — persist the rebuilt artifact atomically
//!    (temp file + rename) *before* anything else changes.
//! 3. **Swap** — publish through the shared [`OracleHandle`]; in-flight
//!    queries finish on the snapshot they started on. The published
//!    oracle is the *memory-mapped* view of the just-saved v3 artifact
//!    ([`islabel_core::MmapIndex`]) — the rebuild's heap index is
//!    dropped and the server serves zero-copy off the artifact it owns
//!    on disk; if mapping fails for any reason the heap index is
//!    published instead, so compaction never fails on the swap.
//! 4. **WAL reset** — only now truncate the log, rewriting it with the
//!    rebuilt artifact's fresh epoch.
//!
//! The ordering *new index durable → swap → WAL truncate* is what makes a
//! crash at any point safe: before the rename the old artifact + full WAL
//! still recover the exact overlay; between the rename and the WAL reset
//! the new artifact simply discards the stale-epoch log (those ops are
//! already folded in — see `persist::wal`); after the reset the pair is
//! pristine. No window loses an acknowledged update or double-applies one.
//!
//! Compactions are single-flight: a second [`compact`] while one is
//! running fails fast with [`CompactError::Busy`] instead of queueing —
//! rebuilds are expensive and back-to-back runs would fold the same ops
//! twice for no benefit.
//!
//! [`IsLabelIndex::is_stale`]: islabel_core::IsLabelIndex::is_stale
//! [`load_index_with_wal`]: islabel_core::load_index_with_wal
//! [`compact`]: RebuildCoordinator::compact

use islabel_core::persist::{load_index_with_wal, try_save_index_to_path, wal::WalWriter};
use islabel_core::snapshot::OracleHandle;
use islabel_core::{BuildConfig, IsLabelIndex, MmapIndex, SharedOracle, DEFAULT_WAL_SYNC_EVERY};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// What one successful compaction did; returned by
/// [`RebuildCoordinator::compact`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Snapshot generation the rebuilt index was published as.
    pub version: u64,
    /// Vertices in the rebuilt (pristine) index.
    pub num_vertices: usize,
    /// Pending ops (sealed + WAL-replayed) folded into the rebuild.
    pub folded_ops: usize,
    /// Ops replayed from the WAL tail specifically (the rest were sealed
    /// in the artifact).
    pub replayed_ops: usize,
}

/// Why a compaction did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactError {
    /// Another compaction is already running; retry after it finishes.
    Busy,
    /// The rebuild pipeline failed (I/O, corrupt artifact, build panic);
    /// the served index and the on-disk artifact + WAL pair are untouched.
    Failed(String),
}

impl std::fmt::Display for CompactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompactError::Busy => write!(f, "a compaction is already in progress"),
            CompactError::Failed(msg) => write!(f, "compaction failed: {msg}"),
        }
    }
}

impl std::error::Error for CompactError {}

/// Coordinates background rebuild-then-swap compactions for a served
/// index backed by an on-disk artifact + WAL pair (see the [module
/// docs](self) for the crash-safety argument).
///
/// Shared with the serving side as an `Arc`: the network server's
/// `Compact` admin opcode and the CLI's `compact` command both funnel
/// into [`compact`](RebuildCoordinator::compact).
pub struct RebuildCoordinator {
    handle: Arc<OracleHandle>,
    index_path: PathBuf,
    wal_path: PathBuf,
    config: BuildConfig,
    /// Single-flight guard; holds no data, only the "running" claim.
    running: Mutex<()>,
}

impl RebuildCoordinator {
    /// A coordinator publishing through `handle`, rebuilding from the
    /// artifact at `index_path` plus the WAL at `wal_path`, with `config`
    /// governing the rebuild.
    pub fn new(
        handle: Arc<OracleHandle>,
        index_path: impl Into<PathBuf>,
        wal_path: impl Into<PathBuf>,
        config: BuildConfig,
    ) -> Self {
        Self {
            handle,
            index_path: index_path.into(),
            wal_path: wal_path.into(),
            config,
            running: Mutex::new(()),
        }
    }

    /// The handle compactions publish through.
    pub fn handle(&self) -> &Arc<OracleHandle> {
        &self.handle
    }

    /// Runs one full compaction on a dedicated worker thread (joined
    /// before returning, so a build panic surfaces as
    /// [`CompactError::Failed`], never a poisoned server): rebuild from
    /// artifact + WAL, persist durably, swap, then reset the log.
    ///
    /// Call it from a background/admin thread — the serving workers keep
    /// answering on the old snapshot while this blocks.
    pub fn compact(&self) -> Result<CompactStats, CompactError> {
        let result = self.compact_inner();
        // Re-emit the outcome through the process-wide registry; folded
        // and replayed op totals accumulate across compactions.
        let registry = islabel_obs::Registry::global();
        let outcome = match &result {
            Ok(_) => "ok",
            Err(CompactError::Busy) => "busy",
            Err(CompactError::Failed(_)) => "failed",
        };
        registry
            .counter(
                islabel_obs::names::METRIC_COMPACTIONS_TOTAL,
                "Background compactions by outcome.",
                &[("outcome", outcome)],
            )
            .inc();
        if let Ok(stats) = &result {
            registry
                .counter(
                    islabel_obs::names::METRIC_COMPACT_FOLDED_OPS_TOTAL,
                    "Overlay + WAL operations folded into rebuilt indexes.",
                    &[],
                )
                .add(stats.folded_ops as u64);
            registry
                .counter(
                    islabel_obs::names::METRIC_COMPACT_REPLAYED_OPS_TOTAL,
                    "WAL-tail operations replayed during compaction rebuilds.",
                    &[],
                )
                .add(stats.replayed_ops as u64);
        }
        result
    }

    fn compact_inner(&self) -> Result<CompactStats, CompactError> {
        let Ok(_guard) = self.running.try_lock() else {
            return Err(CompactError::Busy);
        };
        let index_path = self.index_path.clone();
        let wal_path = self.wal_path.clone();
        let config = self.config;
        let handle = Arc::clone(&self.handle);
        let worker = std::thread::Builder::new()
            .name("islabel-compact".into())
            .spawn(move || -> Result<CompactStats, String> {
                let (index, recovery) =
                    load_index_with_wal(&index_path, &wal_path).map_err(|e| e.to_string())?;
                let folded_ops = index.pending_ops();
                let graph = index.current_graph();
                // Release the recovered index's WAL writer before the new
                // log is written below.
                drop(index);
                let rebuilt = IsLabelIndex::try_build(&graph, config).map_err(|e| e.to_string())?;
                let epoch = rebuilt.artifact_epoch();
                let num_vertices = rebuilt.num_vertices();
                // Durability point: the rebuilt artifact reaches disk
                // (atomically) before the swap and before the log is
                // touched.
                try_save_index_to_path(&rebuilt, &index_path).map_err(|e| e.to_string())?;
                // Serve zero-copy off the artifact just persisted: map it
                // and drop the rebuild's heap copy. The verified open
                // recomputes every section checksum, so a corrupt write
                // can never be published. Any failure falls back to the
                // heap index — both engines answer identically, so this
                // choice is unobservable to queries.
                let published: SharedOracle = match MmapIndex::open_verified(&index_path) {
                    Ok(mapped) => Arc::new(mapped),
                    Err(_) => Arc::new(rebuilt),
                };
                let snapshot = handle.swap(published);
                drop(snapshot); // retire the old snapshot's pin immediately
                                // Only now reset the log, onto the new artifact's epoch. A
                                // crash before this point leaves a stale-epoch WAL the next
                                // load discards.
                let mut w = WalWriter::create(&wal_path, epoch, DEFAULT_WAL_SYNC_EVERY)
                    .map_err(|e| e.to_string())?;
                w.sync().map_err(|e| e.to_string())?;
                Ok(CompactStats {
                    version: handle.version(),
                    num_vertices,
                    folded_ops,
                    replayed_ops: recovery.replayed,
                })
            })
            .map_err(|e| CompactError::Failed(e.to_string()))?;
        match worker.join() {
            Ok(result) => result.map_err(CompactError::Failed),
            Err(_) => Err(CompactError::Failed("rebuild worker panicked".into())),
        }
    }
}

impl std::fmt::Debug for RebuildCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RebuildCoordinator")
            .field("index_path", &self.index_path)
            .field("wal_path", &self.wal_path)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use islabel_core::persist;
    use islabel_core::snapshot::Snapshot;
    use islabel_graph::generators::{barabasi_albert, WeightModel};

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("islabel-rebuild-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn compact_folds_wal_swaps_and_resets_log() {
        let dir = tempdir("fold");
        let index_path = dir.join("i.islx");
        let wal_path = dir.join("i.wal");
        let g = barabasi_albert(150, 3, WeightModel::Unit, 9);
        let mut index = IsLabelIndex::build(&g, BuildConfig::default());
        persist::try_save_index_to_path(&index, &index_path).unwrap();
        index.attach_wal(&wal_path).unwrap();
        index.insert_edge(2, 77, 1);
        let u = index.insert_vertex(&[(3, 2), (50, 4)]);
        let expected = index.current_graph();
        let epoch_before = index.artifact_epoch();
        drop(index); // server restarts from disk below

        let (served, recovery) = load_index_with_wal(&index_path, &wal_path).unwrap();
        assert_eq!(recovery.replayed, 2);
        assert!(served.has_updates());
        let handle = Arc::new(OracleHandle::new(Snapshot::new(served)));
        let coordinator = RebuildCoordinator::new(
            Arc::clone(&handle),
            &index_path,
            &wal_path,
            BuildConfig::default(),
        );

        let stats = coordinator.compact().unwrap();
        assert_eq!(stats.version, 1);
        assert_eq!(stats.num_vertices, 151);
        assert_eq!(stats.folded_ops, 2);
        assert_eq!(stats.replayed_ops, 2);

        // The served snapshot is the pristine rebuild.
        let snap = handle.load();
        assert_eq!(snap.version(), 1);
        assert_eq!(
            snap.oracle().try_distance(u, 3).unwrap(),
            islabel_core::reference::dijkstra_p2p(&expected, u, 3)
        );

        // Artifact + WAL on disk are a pristine pair with a fresh epoch.
        let (reloaded, rec2) = load_index_with_wal(&index_path, &wal_path).unwrap();
        assert!(!reloaded.has_updates());
        assert_eq!(rec2.replayed, 0);
        assert!(!rec2.created, "the reset WAL already matches");
        assert_ne!(reloaded.artifact_epoch(), epoch_before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_concurrent_compact_reports_busy() {
        let dir = tempdir("busy");
        let index_path = dir.join("i.islx");
        let wal_path = dir.join("i.wal");
        let g = barabasi_albert(80, 2, WeightModel::Unit, 4);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        persist::try_save_index_to_path(&index, &index_path).unwrap();
        let handle = Arc::new(OracleHandle::new(Snapshot::new(index)));
        let coordinator = Arc::new(RebuildCoordinator::new(
            Arc::clone(&handle),
            &index_path,
            &wal_path,
            BuildConfig::default(),
        ));

        // Hold the single-flight guard as a concurrent compaction would.
        let guard = coordinator.running.lock().unwrap();
        assert_eq!(coordinator.compact(), Err(CompactError::Busy));
        drop(guard);
        coordinator.compact().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_compact_leaves_serving_state_untouched() {
        let dir = tempdir("fail");
        let g = barabasi_albert(80, 2, WeightModel::Unit, 4);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        let handle = Arc::new(OracleHandle::new(Snapshot::new(index)));
        // No artifact on disk: the rebuild cannot even load.
        let coordinator = RebuildCoordinator::new(
            Arc::clone(&handle),
            dir.join("missing.islx"),
            dir.join("missing.wal"),
            BuildConfig::default(),
        );
        assert!(matches!(
            coordinator.compact(),
            Err(CompactError::Failed(_))
        ));
        assert_eq!(handle.version(), 0, "no swap on failure");
        std::fs::remove_dir_all(&dir).ok();
    }
}
