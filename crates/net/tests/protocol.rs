//! Protocol hardening: property-based encode→decode identity for
//! arbitrary frames (including max-size batches) and adversarial decoder
//! tests — truncations, byte soup, lying headers — proving the decoder
//! never panics and rejects cleanly.

use islabel_net::protocol::{
    self, decode_request, decode_response, encode_frame, encode_request, encode_response,
    read_frame, FrameReadError, Request, Response, WireError, WireStats,
};
use proptest::collection;
use proptest::prelude::*;

fn arb_path() -> impl Strategy<Value = String> {
    collection::vec(0x20u8..0x7F, 0..120)
        .prop_map(|b| String::from_utf8(b).expect("printable ASCII is UTF-8"))
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        (0u32..=u32::MAX, 0u32..=u32::MAX).prop_map(|(s, t)| Request::Query { s, t }),
        collection::vec((0u32..=u32::MAX, 0u32..=u32::MAX), 0..400)
            .prop_map(|pairs| Request::Batch { pairs }),
        Just(Request::Stats),
        arb_path().prop_map(|path| Request::Reload { path }),
        Just(Request::Shutdown),
        Just(Request::Compact),
        Just(Request::Metrics),
    ]
}

fn arb_latency() -> impl Strategy<Value = Option<Box<islabel_obs::LatencyHistogram>>> {
    prop_oneof![
        Just(None),
        collection::vec(0u64..1 << 30, 1..6).prop_map(|samples| {
            let mut h = islabel_obs::LatencyHistogram::new();
            for ns in samples {
                h.record(std::time::Duration::from_nanos(ns));
            }
            Some(Box::new(h))
        }),
    ]
}

fn arb_dist() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![
        Just(None),
        (0u64..u64::MAX).prop_map(Some), // u64::MAX is the None sentinel
    ]
}

fn arb_wire_error() -> impl Strategy<Value = WireError> {
    prop_oneof![
        (0u32..=u32::MAX, 0u64..=u64::MAX)
            .prop_map(|(vertex, universe)| WireError::VertexOutOfRange { vertex, universe }),
        Just(WireError::StaleIndex),
        Just(WireError::NoPathInfo),
        arb_path().prop_map(|message| WireError::UnknownQuery { message }),
        arb_path().prop_map(|message| WireError::Malformed { message }),
        (0u8..=255).prop_map(|opcode| WireError::UnsupportedOpcode { opcode }),
        arb_path().prop_map(|message| WireError::TooLarge { message }),
        arb_path().prop_map(|message| WireError::ReloadFailed { message }),
        Just(WireError::ShuttingDown),
        Just(WireError::AdminDenied),
        arb_path().prop_map(|message| WireError::CompactFailed { message }),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Pong),
        arb_dist().prop_map(Response::Distance),
        collection::vec(arb_dist(), 0..400).prop_map(Response::Batch),
        (
            arb_path(),
            (0u64..1 << 40, 0u64..1000, 0u64..1 << 30, 0u64..1 << 20),
            (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 30, 0u64..1 << 30),
            ((0u64..1 << 40, 0u64..1 << 20, 0u64..1 << 20), arb_latency()),
        )
            .prop_map(|(engine, a, b, (c, latency))| {
                Response::Stats(WireStats {
                    engine,
                    num_vertices: a.0,
                    snapshot_version: a.1,
                    connections_total: a.2,
                    connections_active: a.3,
                    frames: b.0,
                    queries: b.1,
                    batches: b.2,
                    errors: b.3,
                    uptime_ms: c.0,
                    p50_us: c.1,
                    p99_us: c.2,
                    latency,
                })
            }),
        (0u64..1000, 0u64..1 << 40).prop_map(|(version, num_vertices)| Response::Reloaded {
            version,
            num_vertices
        }),
        (0u64..1000, 0u64..1 << 40).prop_map(|(version, num_vertices)| Response::Compacted {
            version,
            num_vertices
        }),
        Just(Response::ShutdownAck),
        arb_path().prop_map(|text| Response::Metrics { text }),
        arb_wire_error().prop_map(Response::Error),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_encode_decode_identity(id in 0u64..=u64::MAX, req in arb_request()) {
        let mut body = Vec::new();
        encode_request(id, &req, &mut body);
        prop_assert_eq!(decode_request(&body), Ok((id, req)));
    }

    #[test]
    fn response_encode_decode_identity(id in 0u64..=u64::MAX, resp in arb_response()) {
        let mut body = Vec::new();
        encode_response(id, &resp, &mut body);
        prop_assert_eq!(decode_response(&body), Ok((id, resp)));
    }

    #[test]
    fn truncated_encodings_never_panic(req in arb_request(), cut_seed in 0usize..10_000) {
        let mut body = Vec::new();
        encode_request(7, &req, &mut body);
        let cut = cut_seed % (body.len() + 1);
        let parsed = decode_request(&body[..cut]);
        if cut == body.len() {
            prop_assert!(parsed.is_ok());
        } else {
            // Every strict prefix must reject (the frame length makes the
            // full body reach the decoder, so a prefix means corruption).
            prop_assert!(parsed.is_err());
        }
    }

    #[test]
    fn byte_soup_never_panics(bytes in collection::vec(0u8..=255, 0..200)) {
        // Whatever the bytes, both decoders must return, not panic.
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    #[test]
    fn frame_reader_survives_arbitrary_streams(bytes in collection::vec(0u8..=255, 0..64)) {
        let mut r: &[u8] = &bytes;
        let mut buf = Vec::new();
        // Either a frame, a clean EOF, an oversized rejection, or a
        // truncation error — never a panic, never a hang.
        let _ = read_frame(&mut r, 32, &mut buf);
    }
}

/// A batch sized exactly to the default frame cap round-trips: body =
/// id(8) + opcode(1) + count(4) + 8·pairs ≤ cap.
#[test]
fn max_size_batch_roundtrips_at_the_frame_cap() {
    let max_pairs = (protocol::DEFAULT_MAX_FRAME_BYTES as usize - 13) / 8;
    let pairs: Vec<(u32, u32)> = (0..max_pairs as u32).map(|i| (i, i ^ 0xABCD)).collect();
    let req = Request::Batch {
        pairs: pairs.clone(),
    };
    let mut body = Vec::new();
    encode_request(99, &req, &mut body);
    assert!(body.len() <= protocol::DEFAULT_MAX_FRAME_BYTES as usize);

    // Through the framing layer as well, at exactly the cap.
    let mut framed = Vec::new();
    encode_frame(&body, &mut framed);
    let mut r: &[u8] = &framed;
    let mut buf = Vec::new();
    assert!(read_frame(&mut r, protocol::DEFAULT_MAX_FRAME_BYTES, &mut buf).unwrap());
    let (id, decoded) = decode_request(&buf).unwrap();
    assert_eq!(id, 99);
    assert_eq!(decoded, req);

    // One more pair overflows the cap and is rejected by the reader.
    let mut bigger = Vec::new();
    encode_request(
        100,
        &Request::Batch {
            pairs: (0..max_pairs as u32 + 1).map(|i| (i, i)).collect(),
        },
        &mut bigger,
    );
    let mut framed = Vec::new();
    encode_frame(&bigger, &mut framed);
    let mut r: &[u8] = &framed;
    assert!(matches!(
        read_frame(&mut r, protocol::DEFAULT_MAX_FRAME_BYTES, &mut buf),
        Err(FrameReadError::Oversized { .. })
    ));
}

/// The stable wire codes must never change: they are the cross-version
/// contract remote clients rely on.
#[test]
fn error_codes_are_pinned() {
    let cases: [(WireError, u8); 11] = [
        (
            WireError::VertexOutOfRange {
                vertex: 0,
                universe: 0,
            },
            1,
        ),
        (WireError::StaleIndex, 2),
        (WireError::NoPathInfo, 3),
        (WireError::UnknownQuery { message: "".into() }, 15),
        (WireError::Malformed { message: "".into() }, 16),
        (WireError::UnsupportedOpcode { opcode: 0 }, 17),
        (WireError::TooLarge { message: "".into() }, 18),
        (WireError::ReloadFailed { message: "".into() }, 19),
        (WireError::ShuttingDown, 20),
        (WireError::AdminDenied, 21),
        (WireError::CompactFailed { message: "".into() }, 22),
    ];
    for (err, code) in cases {
        assert_eq!(err.code(), code, "{err:?}");
    }
    assert_eq!(
        (
            protocol::opcode::PING,
            protocol::opcode::QUERY,
            protocol::opcode::BATCH,
            protocol::opcode::STATS,
            protocol::opcode::RELOAD,
            protocol::opcode::SHUTDOWN,
            protocol::opcode::COMPACT,
            protocol::opcode::METRICS,
        ),
        (0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08)
    );
    assert_eq!(protocol::MAGIC, *b"ISLW");
    assert_eq!(protocol::VERSION, 1);
}

/// Mutating any single byte of a valid frame must decode to either an
/// error or a *different* well-formed value — never a panic.
#[test]
fn single_byte_corruption_never_panics() {
    let mut body = Vec::new();
    encode_request(
        5,
        &Request::Batch {
            pairs: vec![(1, 2), (3, 4)],
        },
        &mut body,
    );
    for i in 0..body.len() {
        for delta in [1u8, 0x80] {
            let mut corrupted = body.clone();
            corrupted[i] = corrupted[i].wrapping_add(delta);
            let _ = decode_request(&corrupted);
        }
    }

    let mut resp = Vec::new();
    encode_response(
        5,
        &Response::Stats(WireStats {
            engine: "islabel".into(),
            ..WireStats::default()
        }),
        &mut resp,
    );
    for i in 0..resp.len() {
        let mut corrupted = resp.clone();
        corrupted[i] ^= 0xFF;
        let _ = decode_response(&corrupted);
    }
}
