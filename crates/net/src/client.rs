//! [`DistanceClient`] and [`ClientPool`]: the blocking side of the wire.
//!
//! A client owns one TCP connection. The synchronous conveniences
//! ([`distance`](DistanceClient::distance),
//! [`distance_batch`](DistanceClient::distance_batch), ...) send one
//! request and block for its response; the raw
//! [`send`](DistanceClient::send) / [`recv`](DistanceClient::recv)
//! primitives expose the pipeline — issue any number of requests, then
//! collect responses correlated by request id (out-of-order arrivals are
//! stashed, so interleaved waits are safe).
//!
//! [`ClientPool`] multiplexes a workload over several connections for
//! load generation: round-robin singles and batch fan-out across the
//! pool.

use crate::protocol::{
    self, DecodeError, FrameReadError, Request, Response, WireError, WireStats, HELLO_LEN,
};
use islabel_core::QueryError;
use islabel_graph::{Dist, VertexId};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Any failure of a client-side operation.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed (connect, read, write, unexpected EOF).
    Io(std::io::Error),
    /// The peer sent bytes that do not parse as this protocol version.
    Decode(DecodeError),
    /// The handshake failed: the peer is not an IS-LABEL server, or
    /// speaks a different protocol version.
    Handshake(DecodeError),
    /// The server answered with a typed wire error; engine-level codes
    /// convert back to [`QueryError`] via [`NetError::as_query_error`].
    Remote(WireError),
    /// The server announced a frame larger than this client's inbound
    /// cap (see [`DistanceClient::connect_with`]).
    FrameTooLarge {
        /// The announced body length.
        len: u32,
        /// The client's cap.
        max: u32,
    },
    /// The server answered the request id with the wrong response shape
    /// (a server bug, not a transport problem).
    UnexpectedResponse {
        /// What the request expected.
        expected: &'static str,
        /// Debug rendering of what arrived.
        got: String,
    },
}

impl NetError {
    /// The in-process [`QueryError`] behind a [`NetError::Remote`], when
    /// the wire code maps to one — the round-trip of typed errors across
    /// the network boundary.
    pub fn as_query_error(&self) -> Option<QueryError> {
        match self {
            NetError::Remote(w) => w.to_query_error(),
            _ => None,
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network I/O: {e}"),
            NetError::Decode(e) => write!(f, "protocol decode: {e}"),
            NetError::Handshake(e) => write!(f, "handshake failed: {e}"),
            NetError::Remote(e) => write!(f, "server error: {e}"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "inbound frame of {len} bytes exceeds client cap {max}")
            }
            NetError::UnexpectedResponse { expected, got } => {
                write!(f, "unexpected response: wanted {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Decode(e) | NetError::Handshake(e) => Some(e),
            NetError::Remote(e) => Some(e),
            NetError::FrameTooLarge { .. } | NetError::UnexpectedResponse { .. } => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<DecodeError> for NetError {
    fn from(e: DecodeError) -> Self {
        NetError::Decode(e)
    }
}

impl From<FrameReadError> for NetError {
    fn from(e: FrameReadError) -> Self {
        match e {
            FrameReadError::Io(io) => NetError::Io(io),
            // A client-side read timeout (set_read_timeout) is an error
            // here, not a housekeeping tick as on the server.
            FrameReadError::IdleTimeout => NetError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "timed out waiting for a response frame",
            )),
            FrameReadError::Oversized { len, max } => NetError::FrameTooLarge { len, max },
        }
    }
}

/// A blocking client over one pipelined connection. Not `Sync`: one
/// client belongs to one thread (wrap each in a mutex or use a
/// [`ClientPool`] for concurrency).
pub struct DistanceClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// Responses that arrived while waiting for a different id.
    stashed: HashMap<u64, Response>,
    max_frame_bytes: u32,
    frame: Vec<u8>,
}

impl DistanceClient {
    /// Connects and performs the magic/version handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Self::handshake(addr, protocol::DEFAULT_MAX_FRAME_BYTES, None)
    }

    /// [`connect`](DistanceClient::connect) with a custom inbound frame
    /// cap (must admit the server's largest batch response).
    pub fn connect_with(addr: impl ToSocketAddrs, max_frame_bytes: u32) -> Result<Self, NetError> {
        Self::handshake(addr, max_frame_bytes, None)
    }

    /// [`connect`](DistanceClient::connect) presenting an admin token in
    /// the hello. Required for the admin opcodes (`reload`,
    /// `shutdown_server`, `compact`) against a server configured with
    /// [`NetConfig::admin_token`](crate::NetConfig::admin_token); query
    /// traffic never needs it. A wrong token still connects — the server
    /// answers admin requests with the `AdminDenied` code instead.
    pub fn connect_with_token(addr: impl ToSocketAddrs, token: &str) -> Result<Self, NetError> {
        Self::handshake(addr, protocol::DEFAULT_MAX_FRAME_BYTES, Some(token))
    }

    fn handshake(
        addr: impl ToSocketAddrs,
        max_frame_bytes: u32,
        token: Option<&str>,
    ) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);

        let mut hello = Vec::with_capacity(HELLO_LEN);
        protocol::encode_hello_with_token(&mut hello, token);
        writer.write_all(&hello)?;
        writer.flush()?;
        let mut server_hello = [0u8; HELLO_LEN];
        reader.read_exact(&mut server_hello)?;
        let version = protocol::decode_hello(&server_hello).map_err(NetError::Handshake)?;
        if version != protocol::VERSION {
            return Err(NetError::Handshake(DecodeError::VersionMismatch {
                got: version,
                want: protocol::VERSION,
            }));
        }

        Ok(Self {
            reader,
            writer,
            next_id: 1,
            stashed: HashMap::new(),
            max_frame_bytes,
            frame: Vec::new(),
        })
    }

    /// Bounds how long any blocking receive waits for the server; `None`
    /// (the default) waits forever. Set it when talking to servers that
    /// may wedge or vanish behind a partition — a timeout surfaces as
    /// [`NetError::Io`] with kind `WouldBlock`/`TimedOut`.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Bounds how long a blocking send waits on a full socket buffer;
    /// `None` (the default) waits forever.
    pub fn set_write_timeout(&self, timeout: Option<std::time::Duration>) -> std::io::Result<()> {
        self.writer.get_ref().set_write_timeout(timeout)
    }

    /// Pipelining primitive: encodes and buffers one request, returning
    /// the id its response will carry. Nothing hits the wire until
    /// [`flush`](DistanceClient::flush) (or a blocking `recv`-side call).
    /// A request that would exceed the frame cap is rejected locally with
    /// [`NetError::FrameTooLarge`] — sending it would only get the
    /// connection closed by the server's prefix check.
    pub fn send(&mut self, request: &Request) -> Result<u64, NetError> {
        let framed =
            protocol::encode_framed(|out| protocol::encode_request(self.next_id, request, out));
        let body_len = framed.len() - 4;
        if body_len > self.max_frame_bytes as usize {
            return Err(NetError::FrameTooLarge {
                len: body_len as u32,
                max: self.max_frame_bytes,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.writer.write_all(&framed)?;
        Ok(id)
    }

    /// Pushes all buffered requests onto the wire.
    pub fn flush(&mut self) -> Result<(), NetError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Pipelining primitive: blocks for the next response frame, whatever
    /// request it answers.
    pub fn recv(&mut self) -> Result<(u64, Response), NetError> {
        if !protocol::read_frame(&mut self.reader, self.max_frame_bytes, &mut self.frame)? {
            return Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(protocol::decode_response(&self.frame)?)
    }

    /// Blocks until the response for `id` arrives, stashing responses to
    /// other in-flight requests for their own waiters. A response tagged
    /// with the reserved id 0 — the server's address for errors it cannot
    /// attribute to any request (client ids start at 1) — is surfaced
    /// here instead of stashed, since nothing could ever wait for it.
    pub fn wait_for(&mut self, id: u64) -> Result<Response, NetError> {
        if let Some(resp) = self.stashed.remove(&id) {
            return Ok(resp);
        }
        self.flush()?;
        loop {
            let (rid, resp) = self.recv()?;
            if rid == id {
                return Ok(resp);
            }
            if rid == 0 {
                if let Response::Error(e) = resp {
                    return Err(NetError::Remote(e));
                }
            }
            self.stashed.insert(rid, resp);
        }
    }

    fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        let id = self.send(request)?;
        self.wait_for(id)
    }

    /// Round-trip liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", other)),
        }
    }

    /// Remote `dist(s, t)`; `Ok(None)` = unreachable, exactly like
    /// [`DistanceOracle::try_distance`](islabel_core::DistanceOracle::try_distance).
    pub fn distance(&mut self, s: VertexId, t: VertexId) -> Result<Option<Dist>, NetError> {
        match self.call(&Request::Query { s, t })? {
            Response::Distance(d) => Ok(d),
            Response::Error(e) => Err(NetError::Remote(e)),
            other => Err(unexpected("Distance", other)),
        }
    }

    /// Remote batch: distances in input order; one failing pair fails the
    /// batch (the in-process `distance_batch` contract over the wire).
    pub fn distance_batch(
        &mut self,
        pairs: &[(VertexId, VertexId)],
    ) -> Result<Vec<Option<Dist>>, NetError> {
        match self.call(&Request::Batch {
            pairs: pairs.to_vec(),
        })? {
            Response::Batch(d) => Ok(d),
            Response::Error(e) => Err(NetError::Remote(e)),
            other => Err(unexpected("Batch", other)),
        }
    }

    /// Server statistics (counters plus latency percentiles).
    pub fn stats(&mut self) -> Result<WireStats, NetError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error(e) => Err(NetError::Remote(e)),
            other => Err(unexpected("Stats", other)),
        }
    }

    /// The server's metrics registry plus slow-query log as Prometheus
    /// exposition text. Needs no admin token.
    pub fn metrics(&mut self) -> Result<String, NetError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            Response::Error(e) => Err(NetError::Remote(e)),
            other => Err(unexpected("Metrics", other)),
        }
    }

    /// Admin: hot-swap the served index from a path on the *server's*
    /// filesystem; returns the new snapshot generation and vertex count.
    pub fn reload(&mut self, path: &str) -> Result<(u64, u64), NetError> {
        match self.call(&Request::Reload {
            path: path.to_string(),
        })? {
            Response::Reloaded {
                version,
                num_vertices,
            } => Ok((version, num_vertices)),
            Response::Error(e) => Err(NetError::Remote(e)),
            other => Err(unexpected("Reloaded", other)),
        }
    }

    /// Admin: fold the server's WAL into a fresh pristine index
    /// (rebuild-then-swap compaction); returns the new snapshot generation
    /// and vertex count. Blocks for the duration of the rebuild.
    pub fn compact(&mut self) -> Result<(u64, u64), NetError> {
        match self.call(&Request::Compact)? {
            Response::Compacted {
                version,
                num_vertices,
            } => Ok((version, num_vertices)),
            Response::Error(e) => Err(NetError::Remote(e)),
            other => Err(unexpected("Compacted", other)),
        }
    }

    /// Admin: ask the server to drain and exit (acknowledged before the
    /// server starts tearing down).
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            Response::Error(e) => Err(NetError::Remote(e)),
            other => Err(unexpected("ShutdownAck", other)),
        }
    }
}

impl std::fmt::Debug for DistanceClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistanceClient")
            .field("next_id", &self.next_id)
            .field("stashed", &self.stashed.len())
            .finish_non_exhaustive()
    }
}

fn unexpected(expected: &'static str, got: Response) -> NetError {
    NetError::UnexpectedResponse {
        expected,
        got: format!("{got:?}"),
    }
}

/// A fixed-size pool of connections for concurrent load: singles
/// round-robin across the pool, batches fan out over it. `&self`
/// everywhere — share one pool across worker threads.
pub struct ClientPool {
    clients: Vec<Mutex<DistanceClient>>,
    next: AtomicUsize,
}

impl ClientPool {
    /// Opens `connections` independent connections to `addr`.
    pub fn connect(addr: impl ToSocketAddrs + Copy, connections: usize) -> Result<Self, NetError> {
        assert!(connections > 0, "a pool needs at least one connection");
        let clients = (0..connections)
            .map(|_| DistanceClient::connect(addr).map(Mutex::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            clients,
            next: AtomicUsize::new(0),
        })
    }

    /// Connections in the pool.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether the pool is empty (never true: construction requires ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    fn checkout(&self) -> &Mutex<DistanceClient> {
        // ordering: Relaxed — round-robin ticket; only uniqueness
        // matters, no memory is published through it.
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.clients.len();
        &self.clients[i]
    }

    /// Remote `dist(s, t)` on the next connection (round-robin).
    pub fn distance(&self, s: VertexId, t: VertexId) -> Result<Option<Dist>, NetError> {
        self.checkout()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .distance(s, t)
    }

    /// Remote batch fanned out over every connection concurrently,
    /// results in input order. One failing chunk fails the call (first
    /// error in chunk order wins).
    pub fn distance_batch(
        &self,
        pairs: &[(VertexId, VertexId)],
    ) -> Result<Vec<Option<Dist>>, NetError> {
        if pairs.is_empty() {
            return Ok(Vec::new());
        }
        let chunks = self.clients.len().min(pairs.len());
        let chunk = pairs.len().div_ceil(chunks);
        let results: Vec<Result<Vec<Option<Dist>>, NetError>> = std::thread::scope(|scope| {
            let workers: Vec<_> = pairs
                .chunks(chunk)
                .zip(&self.clients)
                .map(|(work, client)| {
                    scope.spawn(move || {
                        client
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .distance_batch(work)
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("pool worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(pairs.len());
        for r in results {
            out.extend(r?);
        }
        Ok(out)
    }

    /// Server statistics through the first connection.
    pub fn stats(&self) -> Result<WireStats, NetError> {
        self.clients[0]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .stats()
    }
}

impl std::fmt::Debug for ClientPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientPool")
            .field("connections", &self.clients.len())
            .finish_non_exhaustive()
    }
}
