#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # islabel-net
//!
//! IS-LABEL on the wire: a dependency-light networking layer over
//! `std::net` that puts the workspace's serving stack behind a TCP
//! endpoint. The paper's pitch is a small k-level label index answering
//! point-to-point distance queries in microseconds — exactly the kind of
//! index that belongs behind a network service; this crate supplies the
//! process boundary the in-process
//! [`QueryService`](islabel_serve::QueryService) stack stops at.
//!
//! Three pieces:
//!
//! * [`protocol`] — a versioned, length-prefixed binary protocol
//!   (magic/version handshake; `Ping`/`Query`/`Batch`/`Stats` plus admin
//!   `Reload`/`Shutdown` opcodes; stable error codes that round-trip
//!   [`QueryError`](islabel_core::QueryError)). Pure functions over byte
//!   buffers, panic-free on adversarial input.
//! * [`DistanceServer`] — an acceptor thread plus one reader/writer
//!   thread pair per connection. Connections are **pipelined**: the
//!   reader decodes and answers frames while the writer streams earlier
//!   responses back, each tagged with its request id, so one connection
//!   keeps many requests in flight. Queries answer through a pinned
//!   [`Snapshot`](islabel_core::Snapshot) session that refreshes when a
//!   hot swap is observed — a wire-triggered `Reload` behaves exactly
//!   like [`OracleHandle::swap`](islabel_core::OracleHandle::swap):
//!   in-flight frames finish on their pinned generation.
//! * [`DistanceClient`] / [`ClientPool`] — a blocking client with
//!   request-id correlation (sync conveniences plus raw `send`/`recv`
//!   pipelining primitives) and a multi-connection pool for load
//!   generation.
//!
//! # Example
//!
//! ```
//! use islabel_core::{BuildConfig, IsLabelIndex};
//! use islabel_graph::GraphBuilder;
//! use islabel_net::{DistanceClient, DistanceServer, NetConfig};
//! use std::sync::Arc;
//!
//! let mut b = GraphBuilder::new(4);
//! for v in 0..3 {
//!     b.add_edge(v, v + 1, 2);
//! }
//! let index = IsLabelIndex::build(&b.build(), BuildConfig::default());
//!
//! let server =
//!     DistanceServer::start(Arc::new(index), "127.0.0.1:0", NetConfig::default()).unwrap();
//! let mut client = DistanceClient::connect(server.local_addr()).unwrap();
//! assert_eq!(client.distance(0, 3).unwrap(), Some(6));
//! assert_eq!(
//!     client.distance_batch(&[(0, 1), (1, 1)]).unwrap(),
//!     vec![Some(2), Some(0)]
//! );
//! server.shutdown();
//! ```

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ClientPool, DistanceClient, NetError};
pub use protocol::{Request, Response, WireError, WireStats};
pub use server::{DistanceServer, NetConfig, ServerStats};
