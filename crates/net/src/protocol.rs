//! The IS-LABEL wire protocol: versioned handshake, length-prefixed
//! frames, request/response encode/decode.
//!
//! Everything here is pure byte-shuffling — no sockets — so the whole
//! protocol is testable on in-memory buffers. The carriers are the
//! vendored [`bytes`] traits: encoding appends to any [`BufMut`] (a
//! `Vec<u8>` in practice), decoding walks a `&[u8]` through a checked
//! cursor that returns [`DecodeError`] instead of panicking on truncated
//! input. The decoder **never panics** on adversarial bytes; every reject
//! is a typed error.
//!
//! # Wire format
//!
//! All integers are little-endian.
//!
//! ```text
//! hello      := magic:[4] = "ISLW" | version:u16 | token_len:u16
//!               | token:[token_len]     (client→server only, cap 256)
//! frame      := len:u32 | body:[len]           (len capped by config)
//! request    := id:u64 | opcode:u8 | payload
//! response   := id:u64 | status:u8 | payload
//!   status 0   = Ok:   payload := opcode:u8 | result (shape per opcode)
//!   status > 0 = Err:  status is the stable error code, payload per code
//! ```
//!
//! The handshake is symmetric: the client sends its hello first, the
//! server validates and answers with its own. A magic mismatch closes the
//! connection; a version mismatch is reported through the hello itself
//! (each side sees the other's version and gives up cleanly).
//!
//! The hello's trailing `u16` (reserved and always 0 in earlier builds) is
//! the byte length of an optional **admin token** the client sends
//! immediately after its fixed 8 hello bytes. Servers configured with a
//! shared secret require it for the admin opcodes (`Reload`, `Shutdown`,
//! `Compact`) and answer unauthorized attempts with the stable code 21
//! ([`WireError::AdminDenied`]); query opcodes never need it. The server's
//! hello always carries `token_len = 0`, which is byte-identical to the
//! legacy reserved field — old clients and new servers (and vice versa)
//! interoperate for non-admin traffic.
//!
//! Request ids are chosen by the client and should be **nonzero**: the
//! server addresses errors it cannot attribute to any request (e.g. an
//! oversized length prefix, where the id is unknowable) to the reserved
//! id 0.
//!
//! Request payloads:
//!
//! | opcode | name     | payload                                |
//! |-------:|----------|----------------------------------------|
//! | `0x01` | Ping     | empty                                  |
//! | `0x02` | Query    | `s:u32, t:u32`                         |
//! | `0x03` | Batch    | `count:u32, count × (s:u32, t:u32)`    |
//! | `0x04` | Stats    | empty                                  |
//! | `0x05` | Reload   | `path_len:u16, path:utf8`              |
//! | `0x06` | Shutdown | empty                                  |
//! | `0x07` | Compact  | empty                                  |
//! | `0x08` | Metrics  | empty                                  |
//!
//! Ok-response results: Ping → empty; Query → `dist:u64` (`u64::MAX` =
//! unreachable, the in-process `INF` sentinel); Batch → `count:u32,
//! count × dist:u64`; Stats → [`WireStats`]; Reload → `version:u64,
//! num_vertices:u64`; Shutdown → empty; Compact → `version:u64,
//! num_vertices:u64`; Metrics → `text_len:u32, text:utf8` (Prometheus
//! exposition text — a `u32` length because exposition easily exceeds the
//! `u16` string-field cap).
//!
//! The Stats result ends with an optional latency-histogram tail
//! (`bucket_count:u32, bucket_count × count:u64, sum_nanos:u64`): encoders
//! that have a histogram append it, and the decoder reads it only when
//! bytes remain — so a pre-histogram Stats payload still decodes (the
//! field comes back `None`).
//!
//! Error codes are stable across releases (see [`WireError::code`]).
//! Codes `1..=3` carry engine-level [`QueryError`]s and round-trip the
//! wire *exactly* ([`WireError::to_query_error`]); code 15 is the lossy
//! escape hatch for future `QueryError` variants (the display string
//! survives, the type does not — `to_query_error` returns `None`); `16..`
//! are protocol-level rejections with no in-process counterpart.
//!
//! This module is a **panic-free zone** and its opcodes/error codes are
//! pinned by `docs/wire_registry.toml` — both enforced by `islabel-lint`
//! (see `lint.toml` at the repo root and § Static analysis in the README).

use bytes::BufMut;
use islabel_core::QueryError;
use islabel_graph::{Dist, VertexId, INF};

/// First bytes of every connection: "IS-Label Wire".
pub const MAGIC: [u8; 4] = *b"ISLW";

/// Protocol version spoken by this build. Bumped on any frame-layout
/// change; the handshake rejects mismatches before any frame is parsed.
pub const VERSION: u16 = 1;

/// Bytes of a serialized hello (either direction).
pub const HELLO_LEN: usize = 8;

/// Default cap on one frame's body, shared by server and client.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 1 << 20;

/// Everything a request frame can ask of the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with an empty Ok.
    Ping,
    /// One point-to-point distance query.
    Query {
        /// Source vertex.
        s: VertexId,
        /// Target vertex.
        t: VertexId,
    },
    /// Many independent queries answered in one response frame, in input
    /// order. One failing pair fails the whole batch (mirroring
    /// `DistanceOracle::distance_batch`).
    Batch {
        /// The `(s, t)` pairs to answer.
        pairs: Vec<(VertexId, VertexId)>,
    },
    /// Server/serving statistics ([`WireStats`]).
    Stats,
    /// Admin: load a persisted index from a path *on the server's
    /// filesystem* and hot-swap it in; in-flight queries finish on the
    /// generation they pinned.
    Reload {
        /// Server-side path of the `.islx` artifact.
        path: String,
    },
    /// Admin: ask the server to drain and exit.
    Shutdown,
    /// Admin: fold accumulated dynamic updates into a fresh pristine index
    /// (background rebuild-then-swap, then WAL truncation) and hot-swap it
    /// in; queries keep flowing on the old snapshot meanwhile.
    Compact,
    /// Prometheus exposition text of the server's metrics registry plus
    /// the slow-query log. Not an admin opcode — scraping needs no token —
    /// but a draining server refuses it like the other work-carrying
    /// opcodes (rendering the registry is not free).
    Metrics,
}

impl Request {
    /// The opcode byte this request serializes to.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Ping => opcode::PING,
            Request::Query { .. } => opcode::QUERY,
            Request::Batch { .. } => opcode::BATCH,
            Request::Stats => opcode::STATS,
            Request::Reload { .. } => opcode::RELOAD,
            Request::Shutdown => opcode::SHUTDOWN,
            Request::Compact => opcode::COMPACT,
            Request::Metrics => opcode::METRICS,
        }
    }
}

/// Request opcode bytes (stable wire constants).
pub mod opcode {
    /// [`super::Request::Ping`].
    pub const PING: u8 = 0x01;
    /// [`super::Request::Query`].
    pub const QUERY: u8 = 0x02;
    /// [`super::Request::Batch`].
    pub const BATCH: u8 = 0x03;
    /// [`super::Request::Stats`].
    pub const STATS: u8 = 0x04;
    /// [`super::Request::Reload`].
    pub const RELOAD: u8 = 0x05;
    /// [`super::Request::Shutdown`].
    pub const SHUTDOWN: u8 = 0x06;
    /// [`super::Request::Compact`].
    pub const COMPACT: u8 = 0x07;
    /// [`super::Request::Metrics`].
    pub const METRICS: u8 = 0x08;
}

/// Server/serving statistics as reported by the `Stats` opcode.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Engine identifier of the currently served snapshot.
    pub engine: String,
    /// Vertices the served index answers for.
    pub num_vertices: u64,
    /// Hot-swap generation of the served snapshot.
    pub snapshot_version: u64,
    /// Connections accepted since the server started.
    pub connections_total: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Request frames processed (all opcodes).
    pub frames: u64,
    /// Distance queries answered (singles plus batch members).
    pub queries: u64,
    /// Batch frames answered.
    pub batches: u64,
    /// Error responses sent.
    pub errors: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Median per-query service latency, microseconds (histogram upper
    /// bound; 0 when no query has been served).
    pub p50_us: u64,
    /// 99th-percentile per-query service latency, microseconds.
    pub p99_us: u64,
    /// Full per-query latency histogram (pow-2 nanosecond buckets), from
    /// which any percentile can be derived client-side. `None` when the
    /// payload predates the histogram tail — the scalar `p50_us`/`p99_us`
    /// stay authoritative either way. Boxed so the common histogram-free
    /// responses don't carry the 40-bucket array inline.
    pub latency: Option<Box<islabel_obs::LatencyHistogram>>,
}

/// Everything the server can answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Ok for [`Request::Ping`].
    Pong,
    /// Ok for [`Request::Query`]; `None` = unreachable (never an error).
    Distance(Option<Dist>),
    /// Ok for [`Request::Batch`], distances in input order.
    Batch(Vec<Option<Dist>>),
    /// Ok for [`Request::Stats`].
    Stats(WireStats),
    /// Ok for [`Request::Reload`]: the new snapshot generation and size.
    Reloaded {
        /// Generation the swap installed.
        version: u64,
        /// Vertices of the freshly loaded index.
        num_vertices: u64,
    },
    /// Ok for [`Request::Shutdown`]: the server acknowledges and drains.
    ShutdownAck,
    /// Ok for [`Request::Compact`]: the rebuilt snapshot's generation and
    /// size.
    Compacted {
        /// Generation the rebuild-then-swap installed.
        version: u64,
        /// Vertices of the rebuilt (pristine) index.
        num_vertices: u64,
    },
    /// Ok for [`Request::Metrics`]: Prometheus exposition text.
    Metrics {
        /// The rendered registry plus slow-query log comment block.
        text: String,
    },
    /// Any failure, carrying a stable code (see [`WireError`]).
    Error(WireError),
}

/// A typed error response with a stable wire code.
///
/// Codes `1..=3` map engine-level [`QueryError`]s and round-trip exactly
/// ([`from`](From::from) / [`to_query_error`](WireError::to_query_error));
/// code 15 lossily carries future `QueryError` variants as their display
/// string; codes `16..` are protocol-level and exist only on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Code 1: [`QueryError::VertexOutOfRange`], payload preserved.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// Number of vertices the served index answers for.
        universe: u64,
    },
    /// Code 2: [`QueryError::StaleIndex`].
    StaleIndex,
    /// Code 3: [`QueryError::NoPathInfo`].
    NoPathInfo,
    /// Code 15: a [`QueryError`] variant this protocol version has no
    /// dedicated code for (the enum is `#[non_exhaustive]`); the display
    /// string survives, the type does not.
    UnknownQuery {
        /// `Display` of the original error.
        message: String,
    },
    /// Code 16: the frame body did not parse; the offending frame is
    /// answered with this error and the connection stays up.
    Malformed {
        /// Human-readable description of the parse failure.
        message: String,
    },
    /// Code 17: an opcode this server does not implement.
    UnsupportedOpcode {
        /// The unrecognized opcode byte.
        opcode: u8,
    },
    /// Code 18: a well-formed request exceeding a server limit (batch size,
    /// path length).
    TooLarge {
        /// Which limit was exceeded.
        message: String,
    },
    /// Code 19: admin reload failed (bad path, corrupt artifact, disabled).
    ReloadFailed {
        /// Why the reload was rejected.
        message: String,
    },
    /// Code 20: the server is draining and no longer answers queries.
    ShuttingDown,
    /// Code 21: an admin opcode (`Reload`, `Shutdown`, `Compact`) from a
    /// connection whose hello did not present the server's admin token.
    AdminDenied,
    /// Code 22: the background compaction could not complete (another one
    /// running, I/O failure, no artifact/WAL configured).
    CompactFailed {
        /// Why the compaction was rejected or failed.
        message: String,
    },
}

impl WireError {
    /// The stable one-byte wire code of this error.
    pub fn code(&self) -> u8 {
        match self {
            WireError::VertexOutOfRange { .. } => 1,
            WireError::StaleIndex => 2,
            WireError::NoPathInfo => 3,
            WireError::UnknownQuery { .. } => 15,
            WireError::Malformed { .. } => 16,
            WireError::UnsupportedOpcode { .. } => 17,
            WireError::TooLarge { .. } => 18,
            WireError::ReloadFailed { .. } => 19,
            WireError::ShuttingDown => 20,
            WireError::AdminDenied => 21,
            WireError::CompactFailed { .. } => 22,
        }
    }

    /// Maps engine-level codes back to the in-process [`QueryError`];
    /// `None` for protocol-level errors that have no local counterpart.
    pub fn to_query_error(&self) -> Option<QueryError> {
        match self {
            WireError::VertexOutOfRange { vertex, universe } => {
                Some(QueryError::VertexOutOfRange {
                    vertex: *vertex,
                    universe: *universe as usize,
                })
            }
            WireError::StaleIndex => Some(QueryError::StaleIndex),
            WireError::NoPathInfo => Some(QueryError::NoPathInfo),
            _ => None,
        }
    }
}

impl From<QueryError> for WireError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::VertexOutOfRange { vertex, universe } => WireError::VertexOutOfRange {
                vertex,
                universe: universe as u64,
            },
            QueryError::StaleIndex => WireError::StaleIndex,
            QueryError::NoPathInfo => WireError::NoPathInfo,
            // `QueryError` is #[non_exhaustive]: future variants degrade to
            // their display string instead of breaking the wire.
            other => WireError::UnknownQuery {
                message: other.to_string(),
            },
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::VertexOutOfRange { vertex, universe } => {
                write!(f, "vertex {vertex} out of range (universe {universe})")
            }
            WireError::StaleIndex => write!(f, "index has pending dynamic updates on the server"),
            WireError::NoPathInfo => write!(f, "served index carries no path info"),
            WireError::UnknownQuery { message } => write!(f, "query error: {message}"),
            WireError::Malformed { message } => write!(f, "malformed frame: {message}"),
            WireError::UnsupportedOpcode { opcode } => {
                write!(f, "unsupported opcode 0x{opcode:02x}")
            }
            WireError::TooLarge { message } => write!(f, "request too large: {message}"),
            WireError::ReloadFailed { message } => write!(f, "reload failed: {message}"),
            WireError::ShuttingDown => write!(f, "server is shutting down"),
            WireError::AdminDenied => {
                write!(
                    f,
                    "admin opcode denied: connection presented no valid token"
                )
            }
            WireError::CompactFailed { message } => write!(f, "compaction failed: {message}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Why a byte sequence failed to parse. Never a panic: every decode path
/// length-checks before reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the field being read.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// The hello did not start with [`MAGIC`].
    BadMagic {
        /// The four bytes received instead.
        got: [u8; 4],
    },
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// The peer's version.
        got: u16,
        /// Our [`VERSION`].
        want: u16,
    },
    /// An opcode byte no [`Request`] maps to.
    UnknownOpcode(u8),
    /// A status byte no [`Response`] maps to.
    UnknownStatus(u8),
    /// The payload parsed but bytes were left over — a framing bug or an
    /// attack, either way rejected.
    TrailingBytes(usize),
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// A declared element count disagrees with the bytes present.
    CountMismatch {
        /// Elements the header declared.
        declared: usize,
        /// Elements the remaining bytes can hold.
        actual: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, have } => {
                write!(f, "truncated: field needs {needed} bytes, {have} left")
            }
            DecodeError::BadMagic { got } => write!(f, "bad magic {got:02x?}"),
            DecodeError::VersionMismatch { got, want } => {
                write!(
                    f,
                    "protocol version mismatch: peer speaks {got}, we speak {want}"
                )
            }
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            DecodeError::UnknownStatus(st) => write!(f, "unknown status 0x{st:02x}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            DecodeError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            DecodeError::CountMismatch { declared, actual } => {
                write!(
                    f,
                    "count mismatch: header declares {declared}, bytes hold {actual}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Checked sequential reader over a byte slice: the panic-free counterpart
/// of the vendored [`bytes::Buf`], returning [`DecodeError::Truncated`]
/// where `Buf` would panic.
struct Cursor<'a> {
    rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(rest: &'a [u8]) -> Self {
        Self { rest }
    }

    fn remaining(&self) -> usize {
        self.rest.len()
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if n > self.rest.len() {
            return Err(DecodeError::Truncated {
                needed: n,
                have: self.rest.len(),
            });
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        // `bytes(N)` guarantees the length, so the conversion cannot
        // actually fail; mapping instead of unwrapping keeps the decode
        // path free of panicking constructs.
        self.bytes(N)?
            .try_into()
            .map_err(|_| DecodeError::Truncated { needed: N, have: 0 })
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u16()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::InvalidUtf8)
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(self.rest.len()))
        }
    }
}

fn put_string(out: &mut impl BufMut, s: &str) {
    // String fields carry a u16 length; longer inputs (e.g. an error
    // message quoting a client-supplied 64 KiB reload path) are truncated
    // at a char boundary so the receiver always gets valid UTF-8.
    let mut len = s.len().min(u16::MAX as usize);
    while !s.is_char_boundary(len) {
        len -= 1;
    }
    out.put_u16_le(len as u16);
    out.put_slice(s.as_bytes().get(..len).unwrap_or_default());
}

fn put_dist(out: &mut impl BufMut, d: Option<Dist>) {
    // `INF` is already the in-process "unreachable" sentinel, so the wire
    // reuses it: no real distance collides with it.
    out.put_u64_le(d.unwrap_or(INF));
}

fn get_dist(c: &mut Cursor<'_>) -> Result<Option<Dist>, DecodeError> {
    let raw = c.u64()?;
    Ok(if raw == INF { None } else { Some(raw) })
}

/// Longest admin token the hello accepts, in bytes. A bound keeps the
/// pre-authentication read trivially small.
pub const MAX_TOKEN_LEN: usize = 256;

/// Appends the serialized hello (either direction, no token) to `out`.
pub fn encode_hello(out: &mut impl BufMut) {
    encode_hello_with_token(out, None);
}

/// Appends a client hello announcing `token` (sent verbatim right after
/// the fixed 8 bytes). Tokens longer than [`MAX_TOKEN_LEN`] are truncated
/// — the server would reject the excess read anyway.
pub fn encode_hello_with_token(out: &mut impl BufMut, token: Option<&str>) {
    let token = token.map(str::as_bytes).unwrap_or_default();
    let len = token.len().min(MAX_TOKEN_LEN);
    out.put_slice(&MAGIC);
    out.put_u16_le(VERSION);
    out.put_u16_le(len as u16);
    out.put_slice(token.get(..len).unwrap_or_default());
}

/// Validates a received hello and returns the peer's version. The caller
/// decides whether a differing (but well-formed) version is fatal;
/// [`DecodeError::BadMagic`] always is. Ignores the token-length field —
/// use [`decode_hello_head`] when the trailing token bytes matter.
pub fn decode_hello(raw: &[u8; HELLO_LEN]) -> Result<u16, DecodeError> {
    decode_hello_head(raw).map(|(version, _)| version)
}

/// Validates a received hello and returns the peer's `(version,
/// token_len)`: `token_len` bytes of admin token follow the fixed hello
/// on the wire (0 for legacy peers and for server hellos).
pub fn decode_hello_head(raw: &[u8; HELLO_LEN]) -> Result<(u16, u16), DecodeError> {
    let mut c = Cursor::new(raw);
    let magic: [u8; 4] = c.array()?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic { got: magic });
    }
    let version = c.u16()?;
    let token_len = c.u16()?;
    Ok((version, token_len))
}

/// Appends one request *body* (no length prefix) to `out`.
pub fn encode_request(id: u64, req: &Request, out: &mut impl BufMut) {
    out.put_u64_le(id);
    out.put_u8(req.opcode());
    match req {
        Request::Ping
        | Request::Stats
        | Request::Shutdown
        | Request::Compact
        | Request::Metrics => {}
        Request::Query { s, t } => {
            out.put_u32_le(*s);
            out.put_u32_le(*t);
        }
        Request::Batch { pairs } => {
            out.put_u32_le(pairs.len() as u32);
            for &(s, t) in pairs {
                out.put_u32_le(s);
                out.put_u32_le(t);
            }
        }
        Request::Reload { path } => put_string(out, path),
    }
}

/// Parses one request body. The id parses even when the payload is
/// malformed — it is returned *inside* the error so the server can still
/// address its error response (see [`decode_request_id`]).
pub fn decode_request(body: &[u8]) -> Result<(u64, Request), DecodeError> {
    let mut c = Cursor::new(body);
    let id = c.u64()?;
    let op = c.u8()?;
    let req = match op {
        opcode::PING => Request::Ping,
        opcode::QUERY => Request::Query {
            s: c.u32()?,
            t: c.u32()?,
        },
        opcode::BATCH => {
            let declared = c.u32()? as usize;
            let actual = c.remaining() / 8;
            if declared != actual || !c.remaining().is_multiple_of(8) {
                return Err(DecodeError::CountMismatch { declared, actual });
            }
            let mut pairs = Vec::with_capacity(declared);
            for _ in 0..declared {
                pairs.push((c.u32()?, c.u32()?));
            }
            Request::Batch { pairs }
        }
        opcode::STATS => Request::Stats,
        opcode::RELOAD => Request::Reload { path: c.string()? },
        opcode::SHUTDOWN => Request::Shutdown,
        opcode::COMPACT => Request::Compact,
        opcode::METRICS => Request::Metrics,
        other => return Err(DecodeError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok((id, req))
}

/// Best-effort request id of a frame body that may not parse: enough of a
/// malformed frame to address an error response to it. `None` when even
/// the id is truncated.
pub fn decode_request_id(body: &[u8]) -> Option<u64> {
    Cursor::new(body).u64().ok()
}

/// Appends one response *body* (no length prefix) to `out`.
pub fn encode_response(id: u64, resp: &Response, out: &mut impl BufMut) {
    out.put_u64_le(id);
    match resp {
        Response::Error(err) => {
            out.put_u8(err.code());
            match err {
                WireError::VertexOutOfRange { vertex, universe } => {
                    out.put_u32_le(*vertex);
                    out.put_u64_le(*universe);
                }
                WireError::StaleIndex
                | WireError::NoPathInfo
                | WireError::ShuttingDown
                | WireError::AdminDenied => {}
                WireError::UnknownQuery { message }
                | WireError::Malformed { message }
                | WireError::TooLarge { message }
                | WireError::ReloadFailed { message }
                | WireError::CompactFailed { message } => put_string(out, message),
                WireError::UnsupportedOpcode { opcode } => out.put_u8(*opcode),
            }
        }
        // Success arms each write the 0 status byte themselves: keeping
        // the match exhaustive at the top level means no `unreachable!`
        // in a panic-free zone (and no way for a new variant to be
        // half-handled — the compiler forces a real arm).
        Response::Pong => {
            out.put_u8(0);
            out.put_u8(opcode::PING);
        }
        Response::Distance(d) => {
            out.put_u8(0);
            out.put_u8(opcode::QUERY);
            put_dist(out, *d);
        }
        Response::Batch(dists) => {
            out.put_u8(0);
            out.put_u8(opcode::BATCH);
            out.put_u32_le(dists.len() as u32);
            for &d in dists {
                put_dist(out, d);
            }
        }
        Response::Stats(s) => {
            out.put_u8(0);
            out.put_u8(opcode::STATS);
            put_string(out, &s.engine);
            for v in [
                s.num_vertices,
                s.snapshot_version,
                s.connections_total,
                s.connections_active,
                s.frames,
                s.queries,
                s.batches,
                s.errors,
                s.uptime_ms,
                s.p50_us,
                s.p99_us,
            ] {
                out.put_u64_le(v);
            }
            if let Some(h) = &s.latency {
                out.put_u32_le(h.buckets().len() as u32);
                for &count in h.buckets() {
                    out.put_u64_le(count);
                }
                out.put_u64_le(h.sum_nanos());
            }
        }
        Response::Reloaded {
            version,
            num_vertices,
        } => {
            out.put_u8(0);
            out.put_u8(opcode::RELOAD);
            out.put_u64_le(*version);
            out.put_u64_le(*num_vertices);
        }
        Response::ShutdownAck => {
            out.put_u8(0);
            out.put_u8(opcode::SHUTDOWN);
        }
        Response::Compacted {
            version,
            num_vertices,
        } => {
            out.put_u8(0);
            out.put_u8(opcode::COMPACT);
            out.put_u64_le(*version);
            out.put_u64_le(*num_vertices);
        }
        Response::Metrics { text } => {
            out.put_u8(0);
            out.put_u8(opcode::METRICS);
            // Exposition text can exceed the u16 string-field cap, so it
            // carries its own u32 length instead of using `put_string`.
            out.put_u32_le(text.len() as u32);
            out.put_slice(text.as_bytes());
        }
    }
}

/// Parses one response body.
pub fn decode_response(body: &[u8]) -> Result<(u64, Response), DecodeError> {
    let mut c = Cursor::new(body);
    let id = c.u64()?;
    let status = c.u8()?;
    let resp = match status {
        0 => match c.u8()? {
            opcode::PING => Response::Pong,
            opcode::QUERY => Response::Distance(get_dist(&mut c)?),
            opcode::BATCH => {
                let declared = c.u32()? as usize;
                let actual = c.remaining() / 8;
                if declared != actual || !c.remaining().is_multiple_of(8) {
                    return Err(DecodeError::CountMismatch { declared, actual });
                }
                let mut dists = Vec::with_capacity(declared);
                for _ in 0..declared {
                    dists.push(get_dist(&mut c)?);
                }
                Response::Batch(dists)
            }
            opcode::STATS => {
                // Struct-literal fields evaluate in written order, which
                // matches the wire order the encoder writes.
                let mut stats = WireStats {
                    engine: c.string()?,
                    num_vertices: c.u64()?,
                    snapshot_version: c.u64()?,
                    connections_total: c.u64()?,
                    connections_active: c.u64()?,
                    frames: c.u64()?,
                    queries: c.u64()?,
                    batches: c.u64()?,
                    errors: c.u64()?,
                    uptime_ms: c.u64()?,
                    p50_us: c.u64()?,
                    p99_us: c.u64()?,
                    latency: None,
                };
                // Optional histogram tail: absent in pre-histogram
                // payloads, which therefore still decode.
                if c.remaining() > 0 {
                    let declared = c.u32()? as usize;
                    if declared != islabel_obs::LATENCY_BUCKETS {
                        return Err(DecodeError::CountMismatch {
                            declared,
                            actual: islabel_obs::LATENCY_BUCKETS,
                        });
                    }
                    let mut counts = [0u64; islabel_obs::LATENCY_BUCKETS];
                    for slot in counts.iter_mut() {
                        *slot = c.u64()?;
                    }
                    let sum_nanos = c.u64()?;
                    stats.latency = Some(Box::new(islabel_obs::LatencyHistogram::from_parts(
                        counts, sum_nanos,
                    )));
                }
                Response::Stats(stats)
            }
            opcode::RELOAD => Response::Reloaded {
                version: c.u64()?,
                num_vertices: c.u64()?,
            },
            opcode::SHUTDOWN => Response::ShutdownAck,
            opcode::COMPACT => Response::Compacted {
                version: c.u64()?,
                num_vertices: c.u64()?,
            },
            opcode::METRICS => {
                let len = c.u32()? as usize;
                let raw = c.bytes(len)?;
                Response::Metrics {
                    text: String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::InvalidUtf8)?,
                }
            }
            other => return Err(DecodeError::UnknownOpcode(other)),
        },
        1 => Response::Error(WireError::VertexOutOfRange {
            vertex: c.u32()?,
            universe: c.u64()?,
        }),
        2 => Response::Error(WireError::StaleIndex),
        3 => Response::Error(WireError::NoPathInfo),
        15 => Response::Error(WireError::UnknownQuery {
            message: c.string()?,
        }),
        16 => Response::Error(WireError::Malformed {
            message: c.string()?,
        }),
        17 => Response::Error(WireError::UnsupportedOpcode { opcode: c.u8()? }),
        18 => Response::Error(WireError::TooLarge {
            message: c.string()?,
        }),
        19 => Response::Error(WireError::ReloadFailed {
            message: c.string()?,
        }),
        20 => Response::Error(WireError::ShuttingDown),
        21 => Response::Error(WireError::AdminDenied),
        22 => Response::Error(WireError::CompactFailed {
            message: c.string()?,
        }),
        other => return Err(DecodeError::UnknownStatus(other)),
    };
    c.finish()?;
    Ok((id, resp))
}

/// Appends a full frame — length prefix plus `body` — to `out`.
pub fn encode_frame(body: &[u8], out: &mut impl BufMut) {
    out.put_u32_le(body.len() as u32);
    out.put_slice(body);
}

/// Builds a full frame by encoding the body in place after a length
/// placeholder and patching the prefix — one buffer, no body copy. The
/// single definition of the prefix layout both halves of the connection
/// use on their hot paths.
pub fn encode_framed(encode_body: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut framed = vec![0u8; 4];
    encode_body(&mut framed);
    let len = (framed.len() - 4) as u32;
    // The placeholder prefix always exists — the buffer starts at 4 bytes
    // and `encode_body` only appends.
    if let Some(prefix) = framed.get_mut(..4) {
        prefix.copy_from_slice(&len.to_le_bytes());
    }
    framed
}

/// Why [`read_frame`] stopped without producing a frame.
#[derive(Debug)]
pub enum FrameReadError {
    /// The underlying transport failed (includes mid-frame EOF, surfaced
    /// as [`std::io::ErrorKind::UnexpectedEof`]).
    Io(std::io::Error),
    /// The length prefix exceeds the configured cap. Unrecoverable for the
    /// connection: the stream cannot be resynchronized past a lying
    /// prefix, so the caller must close it.
    Oversized {
        /// The declared body length.
        len: u32,
        /// The configured cap.
        max: u32,
    },
    /// A read timeout expired *between* frames (no prefix byte arrived).
    /// The connection is still perfectly synchronized — the caller may do
    /// idle housekeeping (e.g. refresh a pinned snapshot) and read again.
    /// A timeout *inside* a frame is [`Io`](FrameReadError::Io) instead:
    /// the peer stalled mid-message.
    IdleTimeout,
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameReadError::Io(e) => write!(f, "frame read: {e}"),
            FrameReadError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
            FrameReadError::IdleTimeout => write!(f, "read timed out between frames"),
        }
    }
}

impl std::error::Error for FrameReadError {}

impl From<std::io::Error> for FrameReadError {
    fn from(e: std::io::Error) -> Self {
        FrameReadError::Io(e)
    }
}

/// Reads one length-prefixed frame body into `buf` (cleared first).
/// `Ok(false)` means the peer closed cleanly at a frame boundary;
/// `Ok(true)` means `buf` holds one complete body.
pub fn read_frame(
    r: &mut impl std::io::Read,
    max_len: u32,
    buf: &mut Vec<u8>,
) -> Result<bool, FrameReadError> {
    let mut prefix = [0u8; 4];
    // A clean EOF before any prefix byte is a normal close; EOF inside the
    // prefix or body is not.
    let mut filled = 0;
    while filled < prefix.len() {
        let Some(dst) = prefix.get_mut(filled..) else {
            break; // unreachable: the loop condition bounds `filled`
        };
        match r.read(dst) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length prefix",
                )
                .into())
            }
            Ok(n) => filled += n,
            // A timeout with zero prefix bytes read is a between-frames
            // idle tick, not a broken stream.
            Err(e)
                if filled == 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Err(FrameReadError::IdleTimeout)
            }
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len > max_len {
        return Err(FrameReadError::Oversized { len, max: max_len });
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut body = Vec::new();
        encode_request(42, &req, &mut body);
        assert_eq!(decode_request(&body), Ok((42, req)));
    }

    fn roundtrip_response(resp: Response) {
        let mut body = Vec::new();
        encode_response(7, &resp, &mut body);
        assert_eq!(decode_response(&body), Ok((7, resp)));
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Query { s: 0, t: u32::MAX });
        roundtrip_request(Request::Batch { pairs: vec![] });
        roundtrip_request(Request::Batch {
            pairs: vec![(1, 2), (3, 4), (u32::MAX, 0)],
        });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Reload {
            path: "/tmp/ix.islx".into(),
        });
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Compact);
        roundtrip_request(Request::Metrics);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Distance(Some(0)));
        roundtrip_response(Response::Distance(None));
        roundtrip_response(Response::Batch(vec![Some(3), None, Some(INF - 1)]));
        roundtrip_response(Response::Stats(WireStats {
            engine: "islabel".into(),
            num_vertices: 9,
            snapshot_version: 2,
            connections_total: 5,
            connections_active: 1,
            frames: 100,
            queries: 90,
            batches: 3,
            errors: 2,
            uptime_ms: 12_345,
            p50_us: 8,
            p99_us: 120,
            latency: Some(Box::new({
                let mut h = islabel_obs::LatencyHistogram::new();
                h.record(std::time::Duration::from_micros(8));
                h.record(std::time::Duration::from_micros(120));
                h
            })),
        }));
        roundtrip_response(Response::Stats(WireStats::default()));
        roundtrip_response(Response::Metrics {
            text: "# HELP islabel_net_queries_total q\n".into(),
        });
        roundtrip_response(Response::Reloaded {
            version: 3,
            num_vertices: 1000,
        });
        roundtrip_response(Response::ShutdownAck);
        roundtrip_response(Response::Compacted {
            version: 4,
            num_vertices: 151,
        });
        for err in [
            WireError::VertexOutOfRange {
                vertex: 99,
                universe: 10,
            },
            WireError::StaleIndex,
            WireError::NoPathInfo,
            WireError::UnknownQuery {
                message: "future".into(),
            },
            WireError::Malformed {
                message: "bad".into(),
            },
            WireError::UnsupportedOpcode { opcode: 0xEE },
            WireError::TooLarge {
                message: "batch".into(),
            },
            WireError::ReloadFailed {
                message: "corrupt".into(),
            },
            WireError::ShuttingDown,
            WireError::AdminDenied,
            WireError::CompactFailed {
                message: "busy".into(),
            },
        ] {
            roundtrip_response(Response::Error(err));
        }
    }

    #[test]
    fn pre_histogram_stats_payload_still_decodes() {
        // Hand-build the old Stats wire shape: engine string + 11 u64
        // scalars, no histogram tail. The decoder must accept it and
        // report `latency: None` rather than erroring on the short body.
        let mut body = Vec::new();
        body.put_u64_le(7); // id
        body.put_u8(0); // status Ok
        body.put_u8(opcode::STATS);
        put_string(&mut body, "islabel");
        for v in 1..=11u64 {
            body.put_u64_le(v);
        }
        let (id, resp) = decode_response(&body).expect("legacy payload decodes");
        assert_eq!(id, 7);
        match resp {
            Response::Stats(s) => {
                assert_eq!(s.engine, "islabel");
                assert_eq!(s.num_vertices, 1);
                assert_eq!(s.p99_us, 11);
                assert_eq!(s.latency, None);
            }
            other => panic!("wrong response {other:?}"),
        }

        // A tail with a lying bucket count is rejected, not mis-read.
        body.put_u32_le(3);
        body.put_u64_le(0);
        assert!(matches!(
            decode_response(&body),
            Err(DecodeError::CountMismatch { declared: 3, .. })
        ));
    }

    #[test]
    fn query_error_roundtrips_through_wire_codes() {
        let original = QueryError::VertexOutOfRange {
            vertex: 999,
            universe: 120,
        };
        let wire = WireError::from(original);
        assert_eq!(wire.code(), 1);
        assert_eq!(wire.to_query_error(), Some(original));
        assert_eq!(
            WireError::from(QueryError::StaleIndex).to_query_error(),
            Some(QueryError::StaleIndex)
        );
        assert_eq!(
            WireError::from(QueryError::NoPathInfo).to_query_error(),
            Some(QueryError::NoPathInfo)
        );
        // Protocol-level errors have no in-process counterpart.
        assert_eq!(WireError::ShuttingDown.to_query_error(), None);
    }

    #[test]
    fn overlong_string_fields_truncate_at_a_char_boundary() {
        // A server error message can quote a client-supplied 64 KiB path;
        // the u16-length string field must truncate to *valid UTF-8*, not
        // panic or split a multibyte char.
        let mut message = "é".repeat(40_000); // 80 000 bytes, 2 each
        message.push('x');
        let mut body = Vec::new();
        encode_response(
            1,
            &Response::Error(WireError::ReloadFailed { message }),
            &mut body,
        );
        let (_, decoded) = decode_response(&body).expect("truncated field stays decodable");
        match decoded {
            Response::Error(WireError::ReloadFailed { message }) => {
                assert!(message.len() <= u16::MAX as usize);
                assert!(message.len() >= u16::MAX as usize - 3, "{}", message.len());
                assert!(message.chars().all(|c| c == 'é'));
            }
            other => panic!("wrong response {other:?}"),
        }
    }

    #[test]
    fn hello_roundtrip_and_rejection() {
        let mut hello = Vec::new();
        encode_hello(&mut hello);
        assert_eq!(hello.len(), HELLO_LEN);
        let raw: [u8; HELLO_LEN] = hello.as_slice().try_into().unwrap();
        assert_eq!(decode_hello(&raw), Ok(VERSION));

        let mut bad = raw;
        bad[0] = b'X';
        assert!(matches!(
            decode_hello(&bad),
            Err(DecodeError::BadMagic { .. })
        ));
    }

    #[test]
    fn hello_token_field_roundtrips_and_stays_legacy_compatible() {
        // Token-less hello is byte-identical to the legacy reserved field.
        let mut plain = Vec::new();
        encode_hello(&mut plain);
        assert_eq!(plain.len(), HELLO_LEN);
        let head: [u8; HELLO_LEN] = plain.as_slice().try_into().unwrap();
        assert_eq!(decode_hello_head(&head), Ok((VERSION, 0)));

        // A token rides after the fixed head, its length announced in the
        // formerly-reserved u16.
        let mut with = Vec::new();
        encode_hello_with_token(&mut with, Some("sesame"));
        assert_eq!(with.len(), HELLO_LEN + 6);
        let head: [u8; HELLO_LEN] = with[..HELLO_LEN].try_into().unwrap();
        assert_eq!(decode_hello_head(&head), Ok((VERSION, 6)));
        assert_eq!(&with[HELLO_LEN..], b"sesame");

        // Oversized tokens clamp to the wire cap instead of overflowing.
        let mut huge = Vec::new();
        encode_hello_with_token(&mut huge, Some(&"a".repeat(MAX_TOKEN_LEN + 50)));
        assert_eq!(huge.len(), HELLO_LEN + MAX_TOKEN_LEN);
    }

    #[test]
    fn truncated_bodies_error_instead_of_panicking() {
        let mut body = Vec::new();
        encode_request(1, &Request::Query { s: 3, t: 4 }, &mut body);
        for cut in 0..body.len() {
            let r = decode_request(&body[..cut]);
            assert!(r.is_err(), "prefix of len {cut} decoded");
        }
        let mut resp = Vec::new();
        encode_response(1, &Response::Batch(vec![Some(1), None]), &mut resp);
        for cut in 0..resp.len() {
            assert!(decode_response(&resp[..cut]).is_err());
        }
    }

    #[test]
    fn batch_count_lies_are_rejected() {
        // Header declares more pairs than the body carries: must reject
        // without allocating the declared amount.
        let mut body = Vec::new();
        body.put_u64_le(1);
        body.put_u8(opcode::BATCH);
        body.put_u32_le(u32::MAX);
        body.put_u32_le(5);
        body.put_u32_le(6);
        assert!(matches!(
            decode_request(&body),
            Err(DecodeError::CountMismatch { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = Vec::new();
        encode_request(1, &Request::Ping, &mut body);
        body.put_u8(0xAA);
        assert_eq!(decode_request(&body), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn malformed_request_still_yields_its_id() {
        let mut body = Vec::new();
        body.put_u64_le(0xFEED);
        body.put_u8(0xFF); // unknown opcode
        assert_eq!(decode_request(&body), Err(DecodeError::UnknownOpcode(0xFF)));
        assert_eq!(decode_request_id(&body), Some(0xFEED));
        assert_eq!(decode_request_id(&[1, 2, 3]), None);
    }

    #[test]
    fn frame_reader_handles_eof_and_caps() {
        let mut out = Vec::new();
        encode_frame(b"hello", &mut out);
        let mut r: &[u8] = &out;
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, 64, &mut buf).unwrap());
        assert_eq!(buf, b"hello");
        assert!(!read_frame(&mut r, 64, &mut buf).unwrap()); // clean EOF

        // Oversized prefix is a typed, unrecoverable rejection.
        let mut lying = Vec::new();
        lying.put_u32_le(1 << 30);
        let mut r: &[u8] = &lying;
        assert!(matches!(
            read_frame(&mut r, 64, &mut buf),
            Err(FrameReadError::Oversized { len, max: 64 }) if len == 1 << 30
        ));

        // EOF mid-body is an I/O error, not a hang or a panic.
        let mut truncated = Vec::new();
        encode_frame(b"hello", &mut truncated);
        truncated.truncate(6);
        let mut r: &[u8] = &truncated;
        assert!(matches!(
            read_frame(&mut r, 64, &mut buf),
            Err(FrameReadError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof
        ));
    }
}
