//! [`DistanceServer`]: the TCP front of the serving stack.
//!
//! One acceptor thread plus a reader/writer thread pair per connection.
//! The reader decodes request frames and answers them through a
//! [`QuerySession`](islabel_core::QuerySession) pinned to the current
//! [`Snapshot`]; the writer streams encoded responses back, each tagged
//! with the request id it answers — so a connection is a **pipeline**:
//! the client may have any number of requests in flight and responses
//! arrive in processing order, correlated by id, while TCP backpressure
//! (a bounded write queue) bounds per-connection memory.
//!
//! Hot swap semantics mirror `QueryService`: after every frame the reader
//! compares its pinned generation with the shared [`OracleHandle`]; when
//! a swap (e.g. a wire-triggered `Reload` or `Compact`) has landed, it
//! re-pins and opens a fresh session, and the frame being processed when
//! the swap hit finishes on the generation it pinned. Idle connections
//! re-pin too: the reader's socket read runs under
//! [`NetConfig::idle_tick`], and a timeout that fires *between* frames
//! checks the handle generation and drops a retired pin — a silent
//! connection no longer keeps an old index's memory alive beyond one
//! tick.
//!
//! Admin opcodes (`Reload`, `Shutdown`, `Compact`) can be gated behind a
//! shared secret ([`NetConfig::admin_token`]) presented in the client's
//! hello; connections without it get the stable `AdminDenied` code while
//! query traffic flows unauthenticated.
//!
//! Error handling is frame-scoped: a body that fails to decode is
//! answered with a `Malformed` error carrying the frame's request id (if
//! one could be recovered) and the connection keeps serving. Only lies
//! the stream cannot recover from — a length prefix over the configured
//! cap, a broken socket, a bad handshake — close the connection.
//!
//! This module is a **panic-free zone** (escapes need a `lint:allow`
//! comment with a reason) and every atomic ordering here carries an
//! `// ordering:` justification — enforced by `islabel-lint` via
//! `lint.toml` at the repo root.

use crate::protocol::{
    self, FrameReadError, Request, Response, WireError, WireStats, HELLO_LEN, MAX_TOKEN_LEN,
};
use islabel_core::persist::try_load_oracle_from_path;
use islabel_core::snapshot::{OracleHandle, SharedOracle, Snapshot};
use islabel_serve::{AtomicLatencyHistogram, LatencyHistogram, RebuildCoordinator};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Limits and toggles of a [`DistanceServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Cap on one frame body's length; a prefix above it closes the
    /// connection (the stream cannot be resynchronized past it).
    pub max_frame_bytes: u32,
    /// Cap on pairs in one `Batch` request; larger well-formed batches are
    /// answered with a `TooLarge` error and the connection stays up.
    pub max_batch_pairs: usize,
    /// Cap on simultaneously open connections; excess accepts are dropped.
    pub max_connections: usize,
    /// Bound of each connection's outbound response queue, in frames.
    /// When the client reads too slowly the reader blocks here —
    /// backpressure instead of unbounded buffering.
    pub write_queue_frames: usize,
    /// Whether the admin `Reload` opcode is honored; when `false` it is
    /// answered with `ReloadFailed` even for token-bearing connections.
    pub allow_reload: bool,
    /// Socket write timeout per connection. Bounds how long a client that
    /// stops *reading* can stall its writer thread — and therefore how
    /// long [`DistanceServer::shutdown`] can block on such a client.
    /// `None` disables the bound (not recommended).
    pub write_timeout: Option<Duration>,
    /// Shared secret gating the admin opcodes (`Reload`, `Shutdown`,
    /// `Compact`): when set, only connections whose hello presented
    /// exactly this token may use them (stable error code 21,
    /// `AdminDenied`, otherwise). `None` (the default) leaves admin open,
    /// matching earlier builds.
    pub admin_token: Option<String>,
    /// Read timeout of the per-connection frame loop. A timeout between
    /// frames is an idle housekeeping tick — the reader re-checks the
    /// snapshot generation and releases a retired pin — not an error.
    /// `None` blocks forever (idle connections then pin retired snapshots
    /// until they next speak).
    pub idle_tick: Option<Duration>,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES,
            max_batch_pairs: 65_536,
            max_connections: 1024,
            write_queue_frames: 1024,
            allow_reload: true,
            write_timeout: Some(Duration::from_secs(30)),
            admin_token: None,
            idle_tick: Some(Duration::from_millis(500)),
        }
    }
}

/// Monotonic server-wide counters (relaxed atomics, written by the
/// connection readers).
struct NetCounters {
    connections_total: AtomicU64,
    connections_active: AtomicU64,
    frames: AtomicU64,
    queries: AtomicU64,
    batches: AtomicU64,
    errors: AtomicU64,
    latency: AtomicLatencyHistogram,
    started: Instant,
}

impl NetCounters {
    fn new() -> Self {
        Self {
            connections_total: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: AtomicLatencyHistogram::new(),
            started: Instant::now(),
        }
    }
}

/// A point-in-time snapshot of a server's counters.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Connections accepted since start.
    pub connections_total: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Request frames processed (all opcodes).
    pub frames: u64,
    /// Distance queries answered (singles plus batch members).
    pub queries: u64,
    /// Batch frames answered.
    pub batches: u64,
    /// Error responses sent.
    pub errors: u64,
    /// Time since the server started.
    pub uptime: Duration,
    /// Per-query service-time distribution (p50/p99 accessors).
    pub latency: LatencyHistogram,
}

/// Bounded per-connection queue of encoded response frames, reader →
/// writer.
struct WriteQueue {
    state: Mutex<WriteQueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct WriteQueueState {
    frames: VecDeque<Vec<u8>>,
    closed: bool,
}

impl WriteQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(WriteQueueState {
                frames: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks while full; `false` once the writer has gone away.
    fn push(&self, frame: Vec<u8>) -> bool {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.closed {
                return false;
            }
            if st.frames.len() < self.capacity {
                st.frames.push_back(frame);
                self.not_empty.notify_one();
                return true;
            }
            st = self.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until a frame is available; `None` once closed *and*
    /// drained, so every accepted response is written before the writer
    /// exits.
    fn pop(&self) -> Option<Vec<u8>> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(f) = st.frames.pop_front() {
                self.not_full.notify_one();
                return Some(f);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking pop, used by the writer to batch before flushing.
    fn try_pop(&self) -> Option<Vec<u8>> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let f = st.frames.pop_front();
        if f.is_some() {
            self.not_full.notify_one();
        }
        f
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// State shared by the acceptor, the connections and the owning handle.
struct ServerShared {
    handle: Arc<OracleHandle>,
    config: NetConfig,
    counters: NetCounters,
    /// Serves the wire `Compact` opcode when configured (see
    /// [`DistanceServer::set_coordinator`]); `None` answers with
    /// `CompactFailed`.
    coordinator: Mutex<Option<Arc<RebuildCoordinator>>>,
    shutting_down: AtomicBool,
    /// Set with the signal below; readers check it per frame and refuse
    /// queries with `ShuttingDown` once a drain has been requested.
    draining: AtomicBool,
    /// Signaled when a wire `Shutdown` (or `request_shutdown`) asks the
    /// owner to drain; `wait_for_shutdown_request` blocks on it.
    shutdown_requested: (Mutex<bool>, Condvar),
}

impl ServerShared {
    fn signal_shutdown(&self) {
        // ordering: SeqCst — the drain flag must be globally ordered
        // against in-flight request checks so no opcode is accepted after
        // a shutdown ack was sent.
        self.draining.store(true, Ordering::SeqCst);
        let (lock, cv) = &self.shutdown_requested;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
    }
}

struct ConnSlot {
    stream: TcpStream,
    reader: Option<JoinHandle<()>>,
    done: Arc<AtomicBool>,
}

/// A TCP server answering the IS-LABEL wire protocol from a hot-swappable
/// index snapshot. See the [module docs](self) for the threading and
/// pipelining model.
pub struct DistanceServer {
    shared: Arc<ServerShared>,
    conns: Arc<Mutex<Vec<ConnSlot>>>,
    acceptor: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl DistanceServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// serving the engine wrapped as a fresh generation-0 snapshot.
    pub fn start(
        oracle: SharedOracle,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> std::io::Result<Self> {
        Self::bind(
            Arc::new(OracleHandle::new(Snapshot::from_arc(oracle))),
            addr,
            config,
        )
    }

    /// Binds `addr` and serves through an existing [`OracleHandle`],
    /// sharing it with whoever else performs swaps (an in-process
    /// [`islabel_serve::QueryService`], a rebuild pipeline, ...).
    pub fn bind(
        handle: Arc<OracleHandle>,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> std::io::Result<Self> {
        Self::bind_with_coordinator(handle, addr, config, None)
    }

    /// [`bind`](Self::bind) with the compaction coordinator wired up
    /// *before* the acceptor thread starts, so a `Compact` request racing
    /// server startup can never observe the unconfigured state (a
    /// [`set_coordinator`](Self::set_coordinator) after `bind` leaves that
    /// window open).
    pub fn bind_with_coordinator(
        handle: Arc<OracleHandle>,
        addr: impl ToSocketAddrs,
        config: NetConfig,
        coordinator: Option<Arc<RebuildCoordinator>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            handle,
            config,
            counters: NetCounters::new(),
            coordinator: Mutex::new(coordinator),
            shutting_down: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            shutdown_requested: (Mutex::new(false), Condvar::new()),
        });
        register_net_metrics(&shared);
        let conns: Arc<Mutex<Vec<ConnSlot>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("islabel-net-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &conns))
                // lint:allow(panic, OS refusing to spawn the acceptor at startup is unrecoverable — no server exists to degrade)
                .expect("spawn acceptor thread")
        };
        Ok(Self {
            shared,
            conns,
            acceptor: Some(acceptor),
            local_addr,
        })
    }

    /// The address the server is listening on (with the OS-assigned port
    /// resolved when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared handle queries answer from; swap it to hot-swap the
    /// served index.
    pub fn handle(&self) -> &Arc<OracleHandle> {
        &self.shared.handle
    }

    /// Wires up the background-compaction coordinator serving the wire
    /// `Compact` opcode. Without one, `Compact` is answered with
    /// `CompactFailed` — a server fronting an in-memory oracle has no
    /// artifact + WAL pair to fold.
    pub fn set_coordinator(&self, coordinator: Arc<RebuildCoordinator>) {
        *self
            .shared
            .coordinator
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(coordinator);
    }

    /// A point-in-time snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        // ordering: Relaxed — independent monotonic counters; a stats
        // snapshot tolerates tearing across counters by design.
        ServerStats {
            connections_total: c.connections_total.load(Ordering::Relaxed),
            connections_active: c.connections_active.load(Ordering::Relaxed),
            frames: c.frames.load(Ordering::Relaxed),
            queries: c.queries.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            uptime: c.started.elapsed(),
            latency: c.latency.snapshot(),
        }
    }

    /// Blocks until a wire `Shutdown` request (or
    /// [`request_shutdown`](DistanceServer::request_shutdown)) arrives.
    /// The embedder then calls [`shutdown`](DistanceServer::shutdown) to
    /// actually drain and join — the split keeps thread teardown on the
    /// owning thread.
    pub fn wait_for_shutdown_request(&self) {
        let (lock, cv) = &self.shared.shutdown_requested;
        let mut requested = lock.lock().unwrap_or_else(|e| e.into_inner());
        while !*requested {
            requested = cv.wait(requested).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks the server as shutdown-requested, waking
    /// [`wait_for_shutdown_request`](DistanceServer::wait_for_shutdown_request).
    pub fn request_shutdown(&self) {
        self.shared.signal_shutdown();
    }

    /// Graceful shutdown: stop accepting, close every connection's read
    /// side, let readers finish the frames they already received, flush
    /// writers, join everything, and return the final stats.
    pub fn shutdown(mut self) -> ServerStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        // ordering: SeqCst — pairs with the acceptor's SeqCst load so the
        // wake-up connection below cannot be accepted before the flag is
        // visible.
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.signal_shutdown();
        if let Some(acceptor) = self.acceptor.take() {
            // The acceptor blocks in accept(); a throwaway connection
            // wakes it to observe the flag.
            drop(TcpStream::connect(self.local_addr));
            // lint:allow(panic, a panicked acceptor is a server bug — propagating the panic out of shutdown is the honest failure)
            acceptor.join().expect("acceptor thread panicked");
        }
        let mut conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        for conn in conns.iter_mut() {
            // Read side only: the reader wakes with EOF, stops taking
            // frames, and the writer still drains queued responses (e.g.
            // a just-pushed ShutdownAck) to well-behaved clients. The
            // write side stays bounded by `NetConfig::write_timeout`, so
            // a client that stopped reading cannot wedge this join.
            let _ = conn.stream.shutdown(Shutdown::Read);
            if let Some(reader) = conn.reader.take() {
                // lint:allow(panic, re-raising a reader thread's panic at join keeps connection bugs loud instead of swallowed)
                reader.join().expect("connection reader panicked");
            }
        }
        conns.clear();
    }
}

impl Drop for DistanceServer {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

impl std::fmt::Debug for DistanceServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistanceServer")
            .field("local_addr", &self.local_addr)
            .field("handle", &self.shared.handle)
            .finish_non_exhaustive()
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    conns: &Arc<Mutex<Vec<ConnSlot>>>,
) {
    for stream in listener.incoming() {
        // ordering: SeqCst — pairs with close_and_join's SeqCst store;
        // the shutdown wake-up connection must observe the flag.
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let mut guard = conns.lock().unwrap_or_else(|e| e.into_inner());
        // Reap finished connections so a long-lived server's registry
        // tracks live sockets, not history.
        guard.retain_mut(|c| {
            // ordering: Acquire — pairs with the reader's Release store
            // of `done`, so everything the finished thread wrote
            // happens-before this reap observes it.
            if c.done.load(Ordering::Acquire) {
                if let Some(r) = c.reader.take() {
                    // lint:allow(panic, re-raising a reader thread's panic at reap keeps connection bugs loud instead of swallowed)
                    r.join().expect("connection reader panicked");
                }
                false
            } else {
                true
            }
        });
        if guard.len() >= shared.config.max_connections {
            drop(stream); // over the cap: refuse by closing
            continue;
        }
        let done = Arc::new(AtomicBool::new(false));
        let reader = {
            let shared = Arc::clone(shared);
            let stream = match stream.try_clone() {
                Ok(s) => s,
                Err(_) => continue,
            };
            let done = Arc::clone(&done);
            std::thread::Builder::new()
                .name("islabel-net-conn".into())
                .spawn(move || {
                    // ordering: Relaxed — independent monotonic counters,
                    // no other memory is published through them.
                    shared
                        .counters
                        .connections_total
                        .fetch_add(1, Ordering::Relaxed);
                    // ordering: Relaxed — same counter discipline.
                    shared
                        .counters
                        .connections_active
                        .fetch_add(1, Ordering::Relaxed);
                    connection_loop(stream, &shared);
                    // ordering: Relaxed — same counter discipline.
                    shared
                        .counters
                        .connections_active
                        .fetch_sub(1, Ordering::Relaxed);
                    // ordering: Release — pairs with the reaper's Acquire
                    // load; publishes this thread's writes before `done`.
                    done.store(true, Ordering::Release);
                })
                // lint:allow(panic, OS refusing to spawn a connection thread means resource exhaustion — failing loudly beats silently dropping the socket)
                .expect("spawn connection reader")
        };
        guard.push(ConnSlot {
            stream,
            reader: Some(reader),
            done,
        });
    }
}

/// Everything one connection does, on its reader thread: handshake, spawn
/// the writer, answer frames until EOF / fatal framing error / shutdown
/// opcode, then drain the writer and exit.
fn connection_loop(mut stream: TcpStream, shared: &Arc<ServerShared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(shared.config.write_timeout);
    run_connection(&mut stream, shared);
    // Socket-level shutdown on *every* exit path (including handshake
    // rejections): the acceptor's registry holds a clone of this stream,
    // so merely dropping ours would leave the socket open and the peer
    // waiting for an EOF that never comes.
    let _ = stream.shutdown(Shutdown::Both);
}

fn run_connection(stream: &mut TcpStream, shared: &Arc<ServerShared>) {
    // Handshake: read the client hello head, then the (possibly empty)
    // admin token it declares; always answer with our hello (so a
    // mismatched peer learns *our* version), then bail on mismatch.
    let mut hello = [0u8; HELLO_LEN];
    if stream.read_exact(&mut hello).is_err() {
        return;
    }
    let head = protocol::decode_hello_head(&hello);
    let token = match head {
        Ok((_, token_len)) => {
            if usize::from(token_len) > MAX_TOKEN_LEN {
                return; // lying length: no way to resync, close unanswered
            }
            let mut buf = vec![0u8; usize::from(token_len)];
            if stream.read_exact(&mut buf).is_err() {
                return;
            }
            buf
        }
        Err(_) => Vec::new(),
    };
    let mut our_hello = Vec::with_capacity(HELLO_LEN);
    protocol::encode_hello(&mut our_hello);
    if stream.write_all(&our_hello).is_err() || stream.flush().is_err() {
        return;
    }
    match head {
        Ok((v, _)) if v == protocol::VERSION => {}
        _ => return, // bad magic or foreign version: hello sent, close
    }
    // Admin gate: open when no token is configured; otherwise an exact
    // byte match of the presented token. Decided once per connection.
    let authed = match &shared.config.admin_token {
        None => true,
        Some(expected) => token == expected.as_bytes(),
    };
    // Only now arm the idle tick: the handshake itself should block
    // normally, but the frame loop's reads wake periodically so an idle
    // connection can release a retired snapshot pin.
    let _ = stream.set_read_timeout(shared.config.idle_tick);

    let queue = Arc::new(WriteQueue::new(shared.config.write_queue_frames));
    let writer = {
        let queue = Arc::clone(&queue);
        let stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        std::thread::Builder::new()
            .name("islabel-net-write".into())
            .spawn(move || writer_loop(stream, &queue))
            // lint:allow(panic, OS refusing to spawn the writer half means resource exhaustion — failing loudly beats a silently half-duplex connection)
            .expect("spawn connection writer")
    };

    serve_frames(stream, shared, &queue, authed);

    // Drain: the writer flushes everything queued, then exits.
    queue.close();
    // lint:allow(panic, re-raising the writer thread's panic keeps connection bugs loud instead of swallowed)
    writer.join().expect("connection writer panicked");
}

/// The frame loop: pin a snapshot, answer frames through one session,
/// re-pin when a hot swap is observed between frames — or, for an idle
/// connection, when the read-timeout tick notices a retired pin.
fn serve_frames(
    stream: &mut TcpStream,
    shared: &Arc<ServerShared>,
    queue: &WriteQueue,
    authed: bool,
) {
    let mut frame = Vec::new();
    let respond = |id: u64, resp: &Response| -> bool {
        if matches!(resp, Response::Error(_)) {
            // ordering: Relaxed — independent monotonic counter.
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        queue.push(protocol::encode_framed(|out| {
            protocol::encode_response(id, resp, out)
        }))
    };
    'pin: loop {
        let pinned = shared.handle.load();
        let mut session = pinned.session();
        loop {
            match protocol::read_frame(stream, shared.config.max_frame_bytes, &mut frame) {
                Ok(true) => {}
                Ok(false) => return, // clean close
                Err(FrameReadError::Oversized { len, max }) => {
                    // The stream cannot be resynchronized past a lying
                    // prefix: answer (id unknowable) and close.
                    respond(
                        0,
                        &Response::Error(WireError::TooLarge {
                            message: format!("frame length {len} exceeds cap {max}"),
                        }),
                    );
                    return;
                }
                Err(FrameReadError::IdleTimeout) => {
                    // Between-frames housekeeping tick: if a swap landed
                    // while this connection sat silent, drop the retired
                    // pin (and its memory) by re-pinning now rather than
                    // whenever the client next speaks.
                    if shared.handle.version() != pinned.version() {
                        continue 'pin;
                    }
                    continue;
                }
                Err(FrameReadError::Io(_)) => return,
            }
            // ordering: Relaxed — independent monotonic counter.
            shared.counters.frames.fetch_add(1, Ordering::Relaxed);

            let (id, request) = match protocol::decode_request(&frame) {
                Ok(parsed) => parsed,
                Err(e) => {
                    // Frame-scoped failure: answer it, keep the connection.
                    let id = protocol::decode_request_id(&frame).unwrap_or(0);
                    if !respond(
                        id,
                        &Response::Error(WireError::Malformed {
                            message: e.to_string(),
                        }),
                    ) {
                        return;
                    }
                    continue;
                }
            };

            let mut shutdown_after = false;
            // Once a drain has been requested, work-carrying opcodes are
            // refused with the documented ShuttingDown code; Ping/Stats
            // stay answerable so clients can observe the drain.
            // ordering: SeqCst — pairs with signal_shutdown's SeqCst
            // store; after a shutdown ack no work opcode may slip in.
            let draining = shared.draining.load(Ordering::SeqCst);
            let response = match request {
                _ if draining
                    && matches!(
                        request,
                        Request::Query { .. }
                            | Request::Batch { .. }
                            | Request::Reload { .. }
                            | Request::Compact
                            | Request::Metrics
                    ) =>
                {
                    Response::Error(WireError::ShuttingDown)
                }
                // Admin gate: when a token is configured and this
                // connection's hello didn't present it, every admin opcode
                // gets the stable code — before any of its side effects.
                _ if !authed
                    && matches!(
                        request,
                        Request::Reload { .. } | Request::Shutdown | Request::Compact
                    ) =>
                {
                    Response::Error(WireError::AdminDenied)
                }
                Request::Ping => Response::Pong,
                Request::Query { s, t } => {
                    // ordering: Relaxed — independent monotonic counter.
                    shared.counters.queries.fetch_add(1, Ordering::Relaxed);
                    let traced_before = session.trace().map_or(0, |tr| tr.queries);
                    let q0 = Instant::now();
                    let answer = session.distance(s, t);
                    let elapsed = q0.elapsed();
                    shared.counters.latency.record(elapsed);
                    // Re-emit the engine's per-phase trace (if this query
                    // actually produced one — short-circuits like s == t
                    // don't) through the registry and the slow-query log.
                    if let Some(sample) = session
                        .trace()
                        .filter(|tr| tr.queries > traced_before)
                        .map(|tr| tr.last)
                    {
                        islabel_obs::QueryPhases::global().record(
                            sample.intersect_ns,
                            sample.seed_ns,
                            sample.search_ns,
                            sample.settled,
                        );
                        islabel_obs::SlowQueryLog::global().observe(islabel_obs::SlowQuery {
                            seq: 0,
                            src: s,
                            dst: t,
                            dist: answer.as_ref().ok().and_then(|d| *d),
                            total_ns: elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
                            intersect_ns: sample.intersect_ns,
                            seed_ns: sample.seed_ns,
                            search_ns: sample.search_ns,
                            settled: sample.settled,
                            kernel_tier: islabel_core::kernel::active_tier().name(),
                            snapshot_generation: pinned.version(),
                        });
                    }
                    match answer {
                        Ok(d) => Response::Distance(d),
                        Err(e) => Response::Error(WireError::from(e)),
                    }
                }
                Request::Batch { pairs } => {
                    if pairs.len() > shared.config.max_batch_pairs {
                        Response::Error(WireError::TooLarge {
                            message: format!(
                                "batch of {} pairs exceeds cap {}",
                                pairs.len(),
                                shared.config.max_batch_pairs
                            ),
                        })
                    } else {
                        // ordering: Relaxed — independent monotonic counter.
                        shared.counters.batches.fetch_add(1, Ordering::Relaxed);
                        let mut dists = Vec::with_capacity(pairs.len());
                        let mut failed = None;
                        for &(s, t) in &pairs {
                            // ordering: Relaxed — independent monotonic counter.
                            shared.counters.queries.fetch_add(1, Ordering::Relaxed);
                            let q0 = Instant::now();
                            let answer = session.distance(s, t);
                            shared.counters.latency.record(q0.elapsed());
                            match answer {
                                Ok(d) => dists.push(d),
                                Err(e) => {
                                    failed = Some(e);
                                    break;
                                }
                            }
                        }
                        match failed {
                            // Mirror `distance_batch`: one bad pair fails
                            // the whole batch with the first error.
                            Some(e) => Response::Error(WireError::from(e)),
                            None => Response::Batch(dists),
                        }
                    }
                }
                Request::Stats => Response::Stats(wire_stats(shared, &pinned)),
                Request::Reload { path } => {
                    if !shared.config.allow_reload {
                        Response::Error(WireError::ReloadFailed {
                            message: "admin reload disabled by server config".into(),
                        })
                    } else {
                        // Mmap-preferred: a pristine v3 artifact is served
                        // zero-copy off the mapped file, anything else
                        // (v2, sealed updates) loads onto the heap.
                        match try_load_oracle_from_path(&path) {
                            Ok(oracle) => {
                                let num_vertices = oracle.num_vertices() as u64;
                                // The retired snapshot pins which swap was
                                // ours; re-reading handle.version() would
                                // race a concurrent admin's swap.
                                let retired = shared.handle.swap(oracle);
                                Response::Reloaded {
                                    version: retired.version() + 1,
                                    num_vertices,
                                }
                            }
                            Err(e) => Response::Error(WireError::ReloadFailed {
                                message: format!("{path}: {e}"),
                            }),
                        }
                    }
                }
                Request::Compact => {
                    // Clone the Arc out so a long rebuild doesn't hold the
                    // registration lock (set_coordinator stays callable).
                    let coordinator = shared
                        .coordinator
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .clone();
                    match coordinator {
                        None => Response::Error(WireError::CompactFailed {
                            message: "no compaction coordinator configured".into(),
                        }),
                        Some(c) => match c.compact() {
                            Ok(stats) => Response::Compacted {
                                version: stats.version,
                                num_vertices: stats.num_vertices as u64,
                            },
                            Err(e) => Response::Error(WireError::CompactFailed {
                                message: e.to_string(),
                            }),
                        },
                    }
                }
                Request::Metrics => {
                    let mut text = islabel_obs::Registry::global().render();
                    islabel_obs::SlowQueryLog::global().render_into(&mut text);
                    Response::Metrics { text }
                }
                Request::Shutdown => {
                    shutdown_after = true;
                    Response::ShutdownAck
                }
            };
            if !respond(id, &response) {
                return; // writer died (client gone)
            }
            if shutdown_after {
                shared.signal_shutdown();
                return;
            }
            if shared.handle.version() != pinned.version() {
                // A swap (possibly our own Reload) landed: re-pin so the
                // next frame answers from the new generation.
                continue 'pin;
            }
        }
    }
}

/// Registers this server's counters as collectors on the global metrics
/// registry (exposed by the wire `Metrics` opcode and the CLI `metrics`
/// command). Re-binding a server replaces the previous one's collectors —
/// one process serves one exposition, and collectors are upserted by
/// (name, labels).
fn register_net_metrics(shared: &Arc<ServerShared>) {
    use islabel_obs::names::{
        METRIC_NET_BATCHES_TOTAL, METRIC_NET_CONNECTIONS_ACTIVE, METRIC_NET_CONNECTIONS_TOTAL,
        METRIC_NET_ERRORS_TOTAL, METRIC_NET_FRAMES_TOTAL, METRIC_NET_QUERIES_TOTAL,
        METRIC_NET_QUERY_LATENCY_SECONDS, METRIC_NET_SNAPSHOT_GENERATION,
    };
    let registry = islabel_obs::Registry::global();
    type Pick = fn(&NetCounters) -> &AtomicU64;
    let counters: [(&'static str, &'static str, Pick); 5] = [
        (
            METRIC_NET_CONNECTIONS_TOTAL,
            "Connections accepted since the server started.",
            |c| &c.connections_total,
        ),
        (
            METRIC_NET_FRAMES_TOTAL,
            "Request frames processed (all opcodes).",
            |c| &c.frames,
        ),
        (
            METRIC_NET_QUERIES_TOTAL,
            "Distance queries answered over the wire (singles plus batch members).",
            |c| &c.queries,
        ),
        (
            METRIC_NET_BATCHES_TOTAL,
            "Batch frames answered over the wire.",
            |c| &c.batches,
        ),
        (
            METRIC_NET_ERRORS_TOTAL,
            "Error responses sent over the wire.",
            |c| &c.errors,
        ),
    ];
    for (name, help, pick) in counters {
        let s = Arc::clone(shared);
        registry.counter_fn(name, help, &[], move || {
            // ordering: Relaxed — independent monotonic counter; a scrape
            // tolerates tearing across counters by design.
            pick(&s.counters).load(Ordering::Relaxed)
        });
    }
    let s = Arc::clone(shared);
    registry.gauge_fn(
        METRIC_NET_CONNECTIONS_ACTIVE,
        "Connections currently open.",
        &[],
        move || {
            // ordering: Relaxed — same counter discipline.
            s.counters.connections_active.load(Ordering::Relaxed) as i64
        },
    );
    let s = Arc::clone(shared);
    registry.gauge_fn(
        METRIC_NET_SNAPSHOT_GENERATION,
        "Hot-swap generation of the currently served snapshot.",
        &[],
        move || s.handle.version() as i64,
    );
    let s = Arc::clone(shared);
    registry.histogram_fn(
        METRIC_NET_QUERY_LATENCY_SECONDS,
        "Per-query service latency over the wire.",
        &[],
        move || s.counters.latency.snapshot(),
    );
}

fn wire_stats(shared: &ServerShared, pinned: &Snapshot) -> WireStats {
    let c = &shared.counters;
    let latency = c.latency.snapshot();
    WireStats {
        // One consistent view: the snapshot *this connection* answers
        // from. Mixing the pinned engine identity with the shared
        // handle's (possibly newer) version would let a Stats response
        // pair a fresh generation number with a stale index's identity.
        engine: pinned.oracle().engine_name().to_string(),
        num_vertices: pinned.oracle().num_vertices() as u64,
        snapshot_version: pinned.version(),
        // ordering: Relaxed — independent monotonic counters; a stats
        // frame tolerates tearing across counters by design.
        connections_total: c.connections_total.load(Ordering::Relaxed),
        connections_active: c.connections_active.load(Ordering::Relaxed),
        frames: c.frames.load(Ordering::Relaxed),
        queries: c.queries.load(Ordering::Relaxed),
        batches: c.batches.load(Ordering::Relaxed),
        errors: c.errors.load(Ordering::Relaxed),
        uptime_ms: c.started.elapsed().as_millis() as u64,
        p50_us: latency.p50().as_micros() as u64,
        p99_us: latency.p99().as_micros() as u64,
        // The scalars above stay for old clients; new ones derive any
        // percentile from the full buckets.
        latency: Some(Box::new(latency)),
    }
}

/// The writer half: stream queued response frames out, flushing whenever
/// the queue momentarily empties (so pipelined bursts coalesce into few
/// syscalls but a lone response never waits).
fn writer_loop(stream: TcpStream, queue: &WriteQueue) {
    let mut out = std::io::BufWriter::new(stream);
    while let Some(frame) = queue.pop() {
        if out.write_all(&frame).is_err() {
            break;
        }
        loop {
            match queue.try_pop() {
                Some(next) => {
                    if out.write_all(&next).is_err() {
                        queue.close();
                        return;
                    }
                }
                None => {
                    if out.flush().is_err() {
                        queue.close();
                        return;
                    }
                    break;
                }
            }
        }
    }
    // Unblock a reader stuck pushing after a write error.
    queue.close();
    let _ = out.flush();
}
